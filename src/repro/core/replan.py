"""Failure-reactive TP/PP re-planning (ROADMAP: fleet re-planning).

When the fleet's heartbeat sweep declares a member dead, the survivors are
suddenly over-subscribed — and on a heterogeneous fleet the lost capacity
may be the *fast* kind (trade a lost H100 for two surviving A800s).  The
:class:`FleetReplanner` reacts by widening surviving members onto their
home node's spare (never-assigned) GPUs: it re-runs the placement search
over each survivor's aggregate GPU budget, picks a strictly-wider
placement, and rebuilds the member through
:meth:`~repro.core.fleet.ServingFleet.replan_member` — which drains and
re-queues the member's in-flight work through the existing crash-requeue
path, so conservation invariants hold by construction.

Dead members' GPUs are deliberately **never** reclaimed: a crashed member
rejoins with its original placement once its fault window closes, so only
spare slots on the survivors' own home nodes are up for grabs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.models.parallelism import ParallelConfig
from repro.serving.placement import Placement

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.fleet import ServingFleet

#: (prefill (tp, pp), decode (tp, pp)) shapes the re-planner may widen to.
#: Mirrors harness.placement_search.DEFAULT_CANDIDATES (kept literal here
#: so the core layer does not import the harness outside search mode).
DEFAULT_REPLAN_CANDIDATES: tuple[tuple[tuple[int, int], tuple[int, int]], ...] = (
    ((1, 1), (1, 1)),
    ((2, 1), (1, 1)),
    ((1, 1), (2, 1)),
    ((2, 1), (2, 1)),
    ((2, 2), (2, 1)),
    ((2, 1), (2, 2)),
    ((2, 2), (2, 2)),
)


@dataclass(frozen=True)
class ReplanConfig:
    """Knobs of the failure-reactive re-planner."""

    #: Survivors widened per failure (slowest hardware first).
    max_members: int = 1
    #: Candidate (prefill, decode) parallelism shapes.
    candidates: tuple = DEFAULT_REPLAN_CANDIDATES
    #: Rank candidates by short simulation (harness.placement_search)
    #: instead of the analytic widest-fit ordering.  Costs a nested
    #: simulation per replan, so it is off by default.
    search: bool = False
    search_requests: int = 60
    search_dataset: str = "sharegpt"
    search_model: str = "opt-13b"
    search_rate_per_gpu: float = 3.0


class FleetReplanner:
    """Widens surviving members over spare GPUs when a member dies."""

    def __init__(self, config: Optional[ReplanConfig] = None) -> None:
        self.config = config or ReplanConfig()
        #: One record per executed replan (time, member, placements).
        self.replans: list[dict] = []

    def identity(self) -> str:
        """Fingerprint identity of this replanner's decision procedure."""
        return "search" if self.config.search else "greedy"

    # -- the reaction ---------------------------------------------------------

    def on_member_failure(self, fleet: "ServingFleet", dead_index: int) -> None:
        """Re-plan up to ``max_members`` survivors onto spare home GPUs."""
        from repro.core.fleet import parallel_with_link

        cluster = fleet.cluster
        if cluster is None:
            return
        # GPUs owned by *any* member — including dead ones, which rejoin
        # with their original placement when their fault window closes.
        owned: set[int] = set()
        for member in fleet.members:
            for instance in member.instances:
                owned.update(instance.gpus)
        survivors = [
            i
            for i in range(len(fleet.members))
            if i not in fleet.failed and i not in fleet.crashed
        ]
        # Slowest prefill hardware first: widening an A800 member recovers
        # more of the lost H100's capacity than widening another H100.
        survivors.sort(
            key=lambda i: (
                fleet.members[i].instances[0].gpu.effective_flops
                if fleet.members[i].instances
                else float("inf"),
                i,
            )
        )
        replanned = 0
        for index in survivors:
            if replanned >= self.config.max_members:
                break
            member = fleet.members[index]
            if not hasattr(member, "rebuild_placement"):
                continue
            nodes = fleet.member_nodes(index)
            if len(nodes) != 1:
                continue  # span-node members keep their placement
            node = next(iter(nodes))
            base = node * cluster.gpus_per_node
            spare = [
                g for g in range(base, base + cluster.gpus_per_node) if g not in owned
            ]
            if not spare:
                continue
            own = sorted(g for inst in member.instances for g in inst.gpus)
            choice = self._choose(member, budget=len(own) + len(spare))
            if choice is None:
                continue
            p_par, d_par = choice
            total = p_par[0] * p_par[1] + d_par[0] * d_par[1]
            slots = sorted(own + spare)[:total]
            prefill_gpus = tuple(slots[: p_par[0] * p_par[1]])
            decode_gpus = tuple(slots[p_par[0] * p_par[1] :])
            p_cfg = ParallelConfig(tp=p_par[0], pp=p_par[1])
            d_cfg = ParallelConfig(tp=d_par[0], pp=d_par[1])
            placement = Placement(
                prefill_gpus=prefill_gpus,
                decode_gpus=decode_gpus,
                prefill_parallel=parallel_with_link(cluster, p_cfg, prefill_gpus),
                decode_parallel=parallel_with_link(cluster, d_cfg, decode_gpus),
            )
            old_label = member.placement.label()
            requeued = fleet.replan_member(index, placement)
            owned.update(slots)
            replanned += 1
            self.replans.append(
                {
                    "time": fleet.sim.now,
                    "member": member.name,
                    "trigger": fleet.members[dead_index].name,
                    "from": old_label,
                    "to": placement.label(),
                    "requeued": requeued,
                }
            )

    # -- candidate choice -----------------------------------------------------

    def _eligible_candidates(
        self, member, budget: int
    ) -> list[tuple[tuple[int, int], tuple[int, int]]]:
        """Strictly-wider candidates that fit the budget and never shrink
        either instance (per-instance memory never drops, so the model
        keeps fitting without a trial construction)."""
        cur_p = member.placement.prefill_parallel.num_gpus
        cur_d = member.placement.decode_parallel.num_gpus
        out = []
        for p_par, d_par in self.config.candidates:
            p = p_par[0] * p_par[1]
            d = d_par[0] * d_par[1]
            if p + d > budget or p < cur_p or d < cur_d or p + d <= cur_p + cur_d:
                continue
            out.append((p_par, d_par))
        return out

    def _choose(
        self, member, budget: int
    ) -> Optional[tuple[tuple[int, int], tuple[int, int]]]:
        eligible = self._eligible_candidates(member, budget)
        if not eligible:
            return None
        if self.config.search:
            ranked = self._search_rank(member, budget, eligible)
            if ranked is not None:
                return ranked
        # Analytic greedy: widest total, then decode-heavy (decode is the
        # IO-bound side that absorbs the re-routed backlog), then prefill.
        return max(
            eligible,
            key=lambda c: (
                c[0][0] * c[0][1] + c[1][0] * c[1][1],
                c[1][0] * c[1][1],
                c[0][0] * c[0][1],
            ),
        )

    def _search_rank(
        self, member, budget: int, eligible: Sequence
    ) -> Optional[tuple[tuple[int, int], tuple[int, int]]]:
        """Rank the eligible candidates by short simulation."""
        from repro.harness.placement_search import search_placement
        from repro.harness.runner import SYSTEM_NAMES

        cfg = self.config
        system = type(member).name
        if system not in SYSTEM_NAMES:
            system = "windserve"
        scores = search_placement(
            system,
            cfg.search_model,
            cfg.search_dataset,
            cfg.search_rate_per_gpu,
            candidates=list(eligible),
            num_requests=cfg.search_requests,
            num_node_gpus=budget,
            gpu=member.instances[0].gpu if member.instances else None,
        )
        if not scores:
            return None
        best = scores[0]
        return (best.prefill_parallel, best.decode_parallel)
