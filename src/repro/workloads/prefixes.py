"""Shared-prefix populations: prefix libraries and prefix mixes.

At millions-of-users scale most traffic reuses a handful of system prompts
and few-shot headers.  The workload layer models that with a
:class:`PrefixLibrary` — a named set of prefix templates, each with a token
length and a stable content hash — and a :class:`PrefixMix` that assigns
each arriving request one of those prefixes (or none) from a dedicated
``"prefix"`` RNG stream, exactly the way :class:`~repro.workloads.arrivals.TierMix`
assigns SLO tiers from the ``"tiers"`` stream.

The canonical text form mirrors ``TierMix``:

``"none=0.25,assistant=0.5:384,fewshot=0.25:640"``

Each entry is ``name=weight:tokens``; the reserved name ``none`` (weight
only, no token length) stands for requests with a unique, unshared prompt.
A request that draws a named prefix carries its stable ``prefix_hash`` and
its ``prefix_len`` — the number of leading prompt tokens whose KV any
instance holding the prefix warm can skip recomputing.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

#: Reserved mix entry meaning "no shared prefix".
NO_PREFIX = "none"


def prefix_hash(name: str, tokens: int) -> int:
    """Stable non-zero 63-bit content hash of a prefix template.

    Derived from the template's identity (name + token length) via SHA-256,
    so the same named prefix hashes identically across seeds, runs, and
    processes — a requirement for cross-member routing affinity and for
    serialised traces to round-trip.
    """
    digest = hashlib.sha256(f"prefix:{name}:{tokens}".encode("utf-8")).digest()
    value = int.from_bytes(digest[:8], "big") >> 1  # 63-bit, non-negative
    return value or 1


@dataclass(frozen=True)
class PrefixEntry:
    """One shared prefix template: a name, a token length, a content hash."""

    name: str
    tokens: int
    hash: int

    def __post_init__(self) -> None:
        if self.tokens < 1:
            raise ValueError(f"prefix {self.name!r} needs at least one token")
        if self.hash == 0:
            raise ValueError(f"prefix {self.name!r} needs a non-zero hash")


@dataclass(frozen=True)
class PrefixLibrary:
    """A named collection of shared-prefix templates."""

    entries: tuple[PrefixEntry, ...]

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for entry in self.entries:
            if entry.name == NO_PREFIX:
                raise ValueError(f"{NO_PREFIX!r} is reserved for the no-prefix slot")
            if entry.name in seen:
                raise ValueError(f"prefix {entry.name!r} appears twice in the library")
            seen.add(entry.name)

    @classmethod
    def build(cls, specs: list[tuple[str, int]]) -> "PrefixLibrary":
        """Build from ``(name, tokens)`` pairs, deriving stable hashes."""
        return cls(
            entries=tuple(
                PrefixEntry(name=name, tokens=tokens, hash=prefix_hash(name, tokens))
                for name, tokens in specs
            )
        )

    def get(self, name: str) -> PrefixEntry:
        for entry in self.entries:
            if entry.name == name:
                return entry
        raise KeyError(name)


@dataclass(frozen=True)
class PrefixMix:
    """A weighted mix of shared prefixes assigned to arriving requests.

    ``weights`` pairs entry names with positive weights; ``library`` holds
    the named templates.  The reserved name ``none`` may appear in the
    weights (and only there) for the unshared-prompt fraction.  The
    canonical text form round-trips through :meth:`parse` /
    :meth:`spec_string` and is what the CLI ``--prefix-mix`` knob and the
    golden-scenario metadata carry.
    """

    weights: tuple[tuple[str, float], ...]
    library: PrefixLibrary

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("a prefix mix needs at least one entry")
        names = {entry.name for entry in self.library.entries}
        seen: set[str] = set()
        for name, weight in self.weights:
            if name != NO_PREFIX and name not in names:
                raise ValueError(f"prefix {name!r} is not in the library")
            if name in seen:
                raise ValueError(f"prefix {name!r} appears twice in the mix")
            if not weight > 0:
                raise ValueError(f"prefix {name!r} needs a positive weight, got {weight}")
            seen.add(name)

    @classmethod
    def parse(cls, text: str) -> "PrefixMix":
        """Parse ``"none=0.25,assistant=0.5:384,fewshot=0.25:640"``."""
        weights: list[tuple[str, float]] = []
        specs: list[tuple[str, int]] = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"cannot parse prefix-mix entry {part!r}; "
                    "expected name=weight:tokens (or none=weight)"
                )
            name, raw = part.split("=", 1)
            name = name.strip()
            if ":" in raw:
                raw_weight, raw_tokens = raw.split(":", 1)
                if name == NO_PREFIX:
                    raise ValueError(f"{NO_PREFIX!r} takes no token length")
                try:
                    tokens = int(raw_tokens)
                except ValueError:
                    raise ValueError(
                        f"prefix {name!r} has non-integer token length {raw_tokens!r}"
                    )
                specs.append((name, tokens))
            else:
                raw_weight = raw
                if name != NO_PREFIX:
                    raise ValueError(
                        f"prefix {name!r} needs a token length (name=weight:tokens)"
                    )
            try:
                weight = float(raw_weight)
            except ValueError:
                raise ValueError(f"prefix {name!r} has non-numeric weight {raw_weight!r}")
            weights.append((name, weight))
        return cls(weights=tuple(weights), library=PrefixLibrary.build(specs))

    @classmethod
    def uniform(cls, count: int, tokens: int, none: float = 0.0) -> "PrefixMix":
        """``count`` equally-likely prefixes of ``tokens`` each (+ optional
        ``none`` fraction) — the standard shape for locality experiments."""
        if count < 1:
            raise ValueError("need at least one prefix")
        share = (1.0 - none) / count if none else 1.0 / count
        weights: list[tuple[str, float]] = []
        if none:
            weights.append((NO_PREFIX, none))
        specs = [(f"p{i}", tokens) for i in range(count)]
        weights.extend((name, share) for name, _ in specs)
        return cls(weights=tuple(weights), library=PrefixLibrary.build(specs))

    def spec_string(self) -> str:
        """The canonical text form (parse/spec_string round-trips)."""
        parts = []
        for name, weight in self.weights:
            if name == NO_PREFIX:
                parts.append(f"{name}={weight:g}")
            else:
                parts.append(f"{name}={weight:g}:{self.library.get(name).tokens}")
        return ",".join(parts)

    def probabilities(self) -> tuple[tuple[str, float], ...]:
        total = sum(weight for _, weight in self.weights)
        return tuple((name, weight / total) for name, weight in self.weights)

    def sample(self, rng: np.random.Generator, n: int) -> list[tuple[int, int]]:
        """Draw ``n`` ``(prefix_hash, prefix_len)`` assignments.

        One batched RNG draw, deterministic; the no-prefix slot yields
        ``(0, 0)``.
        """
        probs = self.probabilities()
        indices = rng.choice(len(probs), size=n, p=[p for _, p in probs])
        assignments: list[tuple[int, int]] = []
        for i in indices:
            name = probs[int(i)][0]
            if name == NO_PREFIX:
                assignments.append((0, 0))
            else:
                entry = self.library.get(name)
                assignments.append((entry.hash, entry.tokens))
        return assignments
