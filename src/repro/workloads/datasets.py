"""Synthetic dataset profiles matching the paper's Table 2.

============  ======================  =====================
dataset       prompt avg/med/P90      output avg/med/P90
============  ======================  =====================
ShareGPT      768.2 / 695 / 1556      195.9 / 87 / 518
LongBench     2890.4 / 2887 / 3792    97.4 / 12 / 369
============  ======================  =====================

ShareGPT stands in for the chatbot scenario (wide length spread); LongBench
for summarisation (long prompts, short outputs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.distributions import LengthDistribution, fitted_lognormal


@dataclass(frozen=True)
class DatasetProfile:
    """Marginal length distributions of one evaluation dataset."""

    name: str
    prompt: LengthDistribution
    output: LengthDistribution
    # The published Table 2 statistics, kept for reporting/validation.
    prompt_stats: tuple[float, float, float]  # avg, median, p90
    output_stats: tuple[float, float, float]


SHAREGPT = DatasetProfile(
    name="sharegpt",
    prompt=fitted_lognormal(median=695, p90=1556, mean=768.2, min_value=4),
    output=fitted_lognormal(median=87, p90=518, mean=195.9, min_value=1),
    prompt_stats=(768.2, 695, 1556),
    output_stats=(195.9, 87, 518),
)

LONGBENCH = DatasetProfile(
    name="longbench",
    prompt=fitted_lognormal(median=2887, p90=3792, mean=2890.4, min_value=64),
    output=fitted_lognormal(median=12, p90=369, mean=97.4, min_value=1),
    prompt_stats=(2890.4, 2887, 3792),
    output_stats=(97.4, 12, 369),
)

DATASET_REGISTRY: dict[str, DatasetProfile] = {
    SHAREGPT.name: SHAREGPT,
    LONGBENCH.name: LONGBENCH,
}


def get_dataset(name: str) -> DatasetProfile:
    key = name.lower()
    if key not in DATASET_REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; known: {sorted(DATASET_REGISTRY)}")
    return DATASET_REGISTRY[key]
