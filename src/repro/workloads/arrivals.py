"""Arrival processes.

The paper evaluates under Poisson arrivals; a Gamma-renewal process with a
coefficient of variation above 1 is provided as well, for robustness
experiments under bursty production-like traffic.
"""

from __future__ import annotations

import numpy as np


def poisson_arrivals(
    rate: float, num_requests: int, rng: np.random.Generator, start: float = 0.0
) -> np.ndarray:
    """Arrival timestamps of a Poisson process with ``rate`` requests/second."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    if num_requests < 0:
        raise ValueError("num_requests must be non-negative")
    gaps = rng.exponential(scale=1.0 / rate, size=num_requests)
    return start + np.cumsum(gaps)


def gamma_arrivals(
    rate: float,
    num_requests: int,
    rng: np.random.Generator,
    cv: float = 2.0,
    start: float = 0.0,
) -> np.ndarray:
    """Gamma-renewal arrivals: mean rate ``rate``, inter-arrival CV ``cv``.

    ``cv > 1`` gives burstier-than-Poisson traffic (``cv = 1`` recovers the
    Poisson process exactly).
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if cv <= 0:
        raise ValueError("cv must be positive")
    if num_requests < 0:
        raise ValueError("num_requests must be non-negative")
    shape = 1.0 / (cv * cv)
    scale = 1.0 / (rate * shape)
    gaps = rng.gamma(shape, scale, size=num_requests)
    return start + np.cumsum(gaps)
