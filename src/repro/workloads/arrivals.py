"""Arrival processes and SLO-tier mixes.

The paper evaluates under Poisson arrivals; a Gamma-renewal process with a
coefficient of variation above 1 is provided as well, for robustness
experiments under bursty production-like traffic.  A :class:`TierMix`
assigns each arrival an SLO tier (interactive/standard/best_effort)
deterministically from a dedicated RNG stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serving.request import TIER_PRIORITY, TIERS


@dataclass(frozen=True)
class TierMix:
    """A weighted mix of SLO tiers assigned to arriving requests.

    ``weights`` pairs tier names with positive weights (any scale; they are
    normalised when sampling).  The canonical text form —
    ``"interactive=0.2,standard=0.5,best_effort=0.3"`` — round-trips through
    :meth:`parse` / :meth:`spec_string` and is what the CLI ``--tier-mix``
    knob and the golden-scenario metadata carry.
    """

    weights: tuple[tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("a tier mix needs at least one tier")
        seen = set()
        for tier, weight in self.weights:
            if tier not in TIER_PRIORITY:
                raise ValueError(f"unknown SLO tier {tier!r}; known: {TIERS}")
            if tier in seen:
                raise ValueError(f"tier {tier!r} appears twice in the mix")
            if not weight > 0:
                raise ValueError(f"tier {tier!r} needs a positive weight, got {weight}")
            seen.add(tier)

    @classmethod
    def parse(cls, text: str) -> "TierMix":
        """Parse ``"interactive=0.2,standard=0.5,best_effort=0.3"``."""
        weights = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"cannot parse tier-mix entry {part!r}; expected tier=weight"
                )
            tier, raw = part.split("=", 1)
            try:
                weight = float(raw)
            except ValueError:
                raise ValueError(f"tier {tier.strip()!r} has non-numeric weight {raw!r}")
            weights.append((tier.strip(), weight))
        return cls(weights=tuple(weights))

    def spec_string(self) -> str:
        """The canonical text form (parse/spec_string round-trips)."""
        return ",".join(f"{tier}={weight:g}" for tier, weight in self.weights)

    def probabilities(self) -> tuple[tuple[str, float], ...]:
        total = sum(weight for _, weight in self.weights)
        return tuple((tier, weight / total) for tier, weight in self.weights)

    def sample(self, rng: np.random.Generator, n: int) -> list[str]:
        """Draw ``n`` tier assignments (one RNG draw batch, deterministic)."""
        probs = self.probabilities()
        indices = rng.choice(len(probs), size=n, p=[p for _, p in probs])
        return [probs[int(i)][0] for i in indices]


def poisson_arrivals(
    rate: float, num_requests: int, rng: np.random.Generator, start: float = 0.0
) -> np.ndarray:
    """Arrival timestamps of a Poisson process with ``rate`` requests/second."""
    if rate <= 0:
        raise ValueError("rate must be positive")
    if num_requests < 0:
        raise ValueError("num_requests must be non-negative")
    gaps = rng.exponential(scale=1.0 / rate, size=num_requests)
    return start + np.cumsum(gaps)


def gamma_arrivals(
    rate: float,
    num_requests: int,
    rng: np.random.Generator,
    cv: float = 2.0,
    start: float = 0.0,
) -> np.ndarray:
    """Gamma-renewal arrivals: mean rate ``rate``, inter-arrival CV ``cv``.

    ``cv > 1`` gives burstier-than-Poisson traffic (``cv = 1`` recovers the
    Poisson process exactly).
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if cv <= 0:
        raise ValueError("cv must be positive")
    if num_requests < 0:
        raise ValueError("num_requests must be non-negative")
    shape = 1.0 / (cv * cv)
    scale = 1.0 / (rate * shape)
    gaps = rng.gamma(shape, scale, size=num_requests)
    return start + np.cumsum(gaps)
