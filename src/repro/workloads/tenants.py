"""Tenant populations.

A :class:`TenantMix` assigns each arriving request an owning tenant from a
weighted population, deterministically on the dedicated ``"tenants"`` RNG
stream.  Tenancy is orthogonal to SLO tiers: tiers rank *how urgent* a
request is, tenants record *whose* it is — the fair-share admission policy
(policies/fairshare.py) uses the tenant to enforce weighted queueing,
budgets, and rate limits.

Tenant names are free-form (unlike the closed tier set) so experiments can
model any population shape — ``"heavy=1,light0=1,light1=1,light2=1"`` is
the adversarial 1-heavy/N-light mix the isolation harness uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.serving.request import DEFAULT_TENANT


@dataclass(frozen=True)
class TenantMix:
    """A weighted mix of tenants assigned to arriving requests.

    ``weights`` pairs tenant names with positive weights (any scale; they
    are normalised when sampling).  The canonical text form —
    ``"acme=0.6,beta=0.25,gamma=0.15"`` — round-trips through
    :meth:`parse` / :meth:`spec_string` and is what the CLI ``--tenant-mix``
    knob and the golden-scenario metadata carry.
    """

    weights: tuple[tuple[str, float], ...]

    def __post_init__(self) -> None:
        if not self.weights:
            raise ValueError("a tenant mix needs at least one tenant")
        seen = set()
        for tenant, weight in self.weights:
            if not tenant:
                raise ValueError("tenant names must be non-empty")
            if "=" in tenant or "," in tenant:
                raise ValueError(
                    f"tenant name {tenant!r} may not contain '=' or ','"
                    " (reserved by the spec-string form)"
                )
            if tenant in seen:
                raise ValueError(f"tenant {tenant!r} appears twice in the mix")
            if not weight > 0:
                raise ValueError(
                    f"tenant {tenant!r} needs a positive weight, got {weight}"
                )
            seen.add(tenant)

    @classmethod
    def parse(cls, text: str) -> "TenantMix":
        """Parse ``"acme=0.6,beta=0.25,gamma=0.15"``."""
        weights = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"cannot parse tenant-mix entry {part!r}; expected tenant=weight"
                )
            tenant, raw = part.split("=", 1)
            try:
                weight = float(raw)
            except ValueError:
                raise ValueError(
                    f"tenant {tenant.strip()!r} has non-numeric weight {raw!r}"
                )
            weights.append((tenant.strip(), weight))
        return cls(weights=tuple(weights))

    def spec_string(self) -> str:
        """The canonical text form (parse/spec_string round-trips)."""
        return ",".join(f"{tenant}={weight:g}" for tenant, weight in self.weights)

    def tenants(self) -> tuple[str, ...]:
        return tuple(tenant for tenant, _ in self.weights)

    def probabilities(self) -> tuple[tuple[str, float], ...]:
        total = sum(weight for _, weight in self.weights)
        return tuple((tenant, weight / total) for tenant, weight in self.weights)

    def sample(self, rng: np.random.Generator, n: int) -> list[str]:
        """Draw ``n`` tenant assignments (one RNG draw batch, deterministic)."""
        probs = self.probabilities()
        indices = rng.choice(len(probs), size=n, p=[p for _, p in probs])
        return [probs[int(i)][0] for i in indices]


__all__ = ["DEFAULT_TENANT", "TenantMix"]
