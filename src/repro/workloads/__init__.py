"""Workload generation: length distributions, arrivals, trace containers."""

from repro.workloads.distributions import LengthDistribution, fitted_lognormal
from repro.workloads.datasets import (
    DATASET_REGISTRY,
    DatasetProfile,
    SHAREGPT,
    LONGBENCH,
    get_dataset,
)
from repro.workloads.arrivals import gamma_arrivals, poisson_arrivals
from repro.workloads.prefixes import PrefixEntry, PrefixLibrary, PrefixMix
from repro.workloads.tenants import TenantMix
from repro.workloads.trace import Trace, TraceStats, generate_trace
from repro.workloads.shifts import WorkloadPhase, generate_shifting_trace

__all__ = [
    "LengthDistribution",
    "fitted_lognormal",
    "DATASET_REGISTRY",
    "DatasetProfile",
    "SHAREGPT",
    "LONGBENCH",
    "get_dataset",
    "poisson_arrivals",
    "gamma_arrivals",
    "PrefixEntry",
    "PrefixLibrary",
    "PrefixMix",
    "TenantMix",
    "Trace",
    "TraceStats",
    "generate_trace",
    "WorkloadPhase",
    "generate_shifting_trace",
]
