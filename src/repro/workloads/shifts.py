"""Time-varying workloads: request-pattern shifts.

The paper's §2.2 argues that DistServe's answer to shifting request
patterns — replanning the placement — "introduces non-negligible
stagnation", motivating WindServe's runtime scheduling instead.  To test
that argument we need traces whose pattern actually shifts: a sequence of
*phases*, each with its own dataset profile and arrival rate (e.g. a
chatbot morning turning into a summarisation-heavy afternoon).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.spec import ModelSpec
from repro.serving.request import Request
from repro.sim.random import RandomStreams
from repro.workloads.arrivals import poisson_arrivals
from repro.workloads.datasets import DatasetProfile
from repro.workloads.trace import Trace


@dataclass(frozen=True)
class WorkloadPhase:
    """One homogeneous segment of a shifting workload."""

    dataset: DatasetProfile
    rate: float  # requests/second (total, not per GPU)
    num_requests: int


def generate_shifting_trace(
    phases: list[WorkloadPhase],
    seed: int = 0,
    model: ModelSpec | None = None,
) -> Trace:
    """Concatenate phases into one trace; each phase samples its own
    dataset's lengths and its own Poisson arrivals starting where the
    previous phase ended."""
    if not phases:
        raise ValueError("need at least one phase")
    streams = RandomStreams(seed)
    requests: list[Request] = []
    clock = 0.0
    next_id = 0
    for index, phase in enumerate(phases):
        if phase.rate <= 0 or phase.num_requests < 0:
            raise ValueError(f"phase {index} has invalid rate/num_requests")
        arrivals = poisson_arrivals(
            phase.rate,
            phase.num_requests,
            streams.get(f"arrivals-{index}"),
            start=clock,
        )
        prompts = phase.dataset.prompt.sample(
            streams.get(f"prompts-{index}"), phase.num_requests
        )
        outputs = phase.dataset.output.sample(
            streams.get(f"outputs-{index}"), phase.num_requests
        )
        for i in range(phase.num_requests):
            prompt, output = int(prompts[i]), int(outputs[i])
            if model is not None:
                prompt = min(prompt, model.max_context - 2)
                output = max(1, min(output, model.max_context - prompt))
            requests.append(
                Request(
                    request_id=next_id,
                    prompt_tokens=prompt,
                    output_tokens=output,
                    arrival_time=float(arrivals[i]),
                )
            )
            next_id += 1
        if len(arrivals):
            clock = float(arrivals[-1])
    name = "+".join(f"{p.dataset.name}@{p.rate:g}" for p in phases)
    mean_rate = sum(p.rate * p.num_requests for p in phases) / max(
        1, sum(p.num_requests for p in phases)
    )
    return Trace(requests, rate=mean_rate, name=f"shift[{name}]")
