"""Request traces: generation, statistics, serialisation."""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

import numpy as np

from repro.models.spec import ModelSpec
from repro.serving.request import DEFAULT_TENANT, DEFAULT_TIER, Request
from repro.sim.random import RandomStreams
from repro.workloads.arrivals import TierMix, gamma_arrivals, poisson_arrivals
from repro.workloads.datasets import DatasetProfile
from repro.workloads.prefixes import PrefixMix
from repro.workloads.tenants import TenantMix


@dataclass(frozen=True)
class TraceStats:
    """Table 2-style summary of a trace."""

    num_requests: int
    rate: float
    prompt_avg: float
    prompt_median: float
    prompt_p90: float
    output_avg: float
    output_median: float
    output_p90: float


class Trace:
    """An ordered collection of requests with arrival timestamps."""

    def __init__(self, requests: list[Request], rate: float = 0.0, name: str = "trace") -> None:
        self.requests = sorted(requests, key=lambda r: r.arrival_time)
        self.rate = rate
        self.name = name
        # Named RNG streams touched while sampling this trace (empty for
        # loaded/synthetic traces); folded into run fingerprints.
        self.rng_registry: tuple[str, ...] = ()

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __getitem__(self, idx: int) -> Request:
        return self.requests[idx]

    @property
    def duration(self) -> float:
        if not self.requests:
            return 0.0
        return self.requests[-1].arrival_time - self.requests[0].arrival_time

    def stats(self) -> TraceStats:
        prompts = np.array([r.prompt_tokens for r in self.requests], dtype=float)
        outputs = np.array([r.output_tokens for r in self.requests], dtype=float)
        if len(prompts) == 0:
            nan = float("nan")
            return TraceStats(0, self.rate, nan, nan, nan, nan, nan, nan)
        return TraceStats(
            num_requests=len(prompts),
            rate=self.rate,
            prompt_avg=float(prompts.mean()),
            prompt_median=float(np.median(prompts)),
            prompt_p90=float(np.percentile(prompts, 90)),
            output_avg=float(outputs.mean()),
            output_median=float(np.median(outputs)),
            output_p90=float(np.percentile(outputs, 90)),
        )

    # -- serialisation ---------------------------------------------------------

    def save(self, path: str | Path) -> None:
        rows = []
        for r in self.requests:
            row = {
                "id": r.request_id,
                "arrival": r.arrival_time,
                "prompt": r.prompt_tokens,
                "output": r.output_tokens,
            }
            # The tier key appears only when set: tier-free trace files
            # stay byte-identical to pre-tier recordings.
            if r.tier != DEFAULT_TIER:
                row["tier"] = r.tier
            # Likewise the prefix keys: only shared-prefix requests carry them.
            if r.prefix_len:
                row["prefix_hash"] = r.prefix_hash
                row["prefix_len"] = r.prefix_len
            # And the tenant: tenant-free traces stay byte-identical.
            if r.tenant != DEFAULT_TENANT:
                row["tenant"] = r.tenant
            rows.append(row)
        Path(path).write_text(json.dumps({"name": self.name, "rate": self.rate, "rows": rows}))

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        data = json.loads(Path(path).read_text())
        requests = [
            Request(
                request_id=row["id"],
                prompt_tokens=row["prompt"],
                output_tokens=row["output"],
                arrival_time=row["arrival"],
                tier=row.get("tier", DEFAULT_TIER),
                prefix_hash=row.get("prefix_hash", 0),
                prefix_len=row.get("prefix_len", 0),
                tenant=row.get("tenant", DEFAULT_TENANT),
            )
            for row in data["rows"]
        ]
        return cls(requests, rate=data.get("rate", 0.0), name=data.get("name", "trace"))


def generate_trace(
    dataset: DatasetProfile,
    rate: float,
    num_requests: int,
    seed: int = 0,
    model: Optional[ModelSpec] = None,
    start_id: int = 0,
    arrival_process: str = "poisson",
    burstiness_cv: float = 2.0,
    tier_mix: Optional[TierMix] = None,
    prefix_mix: Optional[PrefixMix] = None,
    tenant_mix: Optional[TenantMix] = None,
) -> Trace:
    """Sample an arrival trace from a dataset profile.

    ``arrival_process`` is ``"poisson"`` (the paper's setting) or
    ``"bursty"`` (Gamma renewals with inter-arrival CV ``burstiness_cv``).
    When ``model`` is given, prompt+output lengths are clamped so the full
    sequence fits the model's context window (as real benchmark harnesses
    must do — OPT's 2K limit truncates long ShareGPT turns).  With a
    ``tier_mix``, each request draws an SLO tier from the dedicated
    ``"tiers"`` RNG stream; without one the stream is never touched, so
    tier-free traces (and their RNG registries) are byte-identical to
    pre-tier recordings.  A ``prefix_mix`` works the same way over the
    dedicated ``"prefix"`` stream: each request draws a shared-prefix
    assignment (``prefix_hash``/``prefix_len``), clamped so at least one
    prompt token always remains to compute.  A ``tenant_mix`` assigns each
    request an owning tenant from the dedicated ``"tenants"`` stream —
    again only touched when a mix is given, keeping tenant-free traces
    byte-identical to pre-tenant recordings.
    """
    streams = RandomStreams(seed)
    if arrival_process == "poisson":
        arrivals = poisson_arrivals(rate, num_requests, streams.get("arrivals"))
    elif arrival_process == "bursty":
        arrivals = gamma_arrivals(
            rate, num_requests, streams.get("arrivals"), cv=burstiness_cv
        )
    else:
        raise ValueError(f"unknown arrival_process {arrival_process!r}")
    prompts = dataset.prompt.sample(streams.get("prompt-lengths"), num_requests)
    outputs = dataset.output.sample(streams.get("output-lengths"), num_requests)
    tiers = None
    if tier_mix is not None:
        tiers = tier_mix.sample(streams.get("tiers"), num_requests)
    prefixes = None
    if prefix_mix is not None:
        prefixes = prefix_mix.sample(streams.get("prefix"), num_requests)
    tenants = None
    if tenant_mix is not None:
        tenants = tenant_mix.sample(streams.get("tenants"), num_requests)

    requests = []
    for i in range(num_requests):
        prompt, output = int(prompts[i]), int(outputs[i])
        if model is not None:
            prompt = min(prompt, model.max_context - 2)
            output = max(1, min(output, model.max_context - prompt))
        if prefixes is not None:
            p_hash, p_len = prefixes[i]
            # The shared header is a leading slice of the prompt; at least
            # one prompt token must remain uncached so prefill still runs.
            p_len = min(p_len, prompt - 1)
            if p_len <= 0:
                p_hash, p_len = 0, 0
        else:
            p_hash, p_len = 0, 0
        requests.append(
            Request(
                request_id=start_id + i,
                prompt_tokens=prompt,
                output_tokens=output,
                arrival_time=float(arrivals[i]),
                tier=tiers[i] if tiers is not None else DEFAULT_TIER,
                prefix_hash=p_hash,
                prefix_len=p_len,
                tenant=tenants[i] if tenants is not None else DEFAULT_TENANT,
            )
        )
    trace = Trace(requests, rate=rate, name=f"{dataset.name}-r{rate:g}-n{num_requests}")
    trace.rng_registry = streams.registry()
    return trace
