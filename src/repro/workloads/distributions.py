"""Token-length distributions fitted to the paper's Table 2 statistics.

Real prompt/output lengths are heavy-tailed; we model them as clipped
lognormals.  The fit pins the median exactly (``mu = ln median``), takes
``sigma`` from the P90/median ratio, and then solves for the clip point that
matches the reported mean — three published moments, three parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.stats import norm

# Standard-normal quantile for P90.
Z90 = 1.2815515655446004


@dataclass(frozen=True)
class LengthDistribution:
    """Clipped lognormal over positive integer token counts."""

    median: float
    sigma: float
    cap: float
    min_value: int = 1

    @property
    def mu(self) -> float:
        return float(np.log(self.median))

    def mean(self) -> float:
        """Analytic mean of the clipped distribution."""
        return _clipped_lognormal_mean(self.mu, self.sigma, self.cap)

    def p90(self) -> float:
        raw = self.median * np.exp(Z90 * self.sigma)
        return float(min(raw, self.cap))

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` integer lengths."""
        raw = rng.lognormal(mean=self.mu, sigma=self.sigma, size=n)
        clipped = np.clip(raw, self.min_value, self.cap)
        return np.maximum(np.rint(clipped).astype(int), self.min_value)


def _clipped_lognormal_mean(mu: float, sigma: float, cap: float) -> float:
    """E[min(X, cap)] for X ~ LogNormal(mu, sigma)."""
    if cap <= 0:
        return 0.0
    ln_c = np.log(cap)
    below = np.exp(mu + sigma**2 / 2) * norm.cdf((ln_c - mu - sigma**2) / sigma)
    above = cap * (1.0 - norm.cdf((ln_c - mu) / sigma))
    return float(below + above)


def fitted_lognormal(
    median: float,
    p90: float,
    mean: float,
    min_value: int = 1,
    max_cap: float = 1e6,
) -> LengthDistribution:
    """Fit a clipped lognormal to (median, P90, mean).

    ``sigma`` comes from the P90/median ratio; the clip point is found by
    bisection so the clipped mean matches the target.  If even an unclipped
    distribution undershoots the mean (possible when the reported moments are
    slightly inconsistent), the cap saturates at ``max_cap``.
    """
    if not median > 0:
        raise ValueError("median must be positive")
    if p90 < median:
        raise ValueError("p90 must be >= median")
    mu = float(np.log(median))
    sigma = max(1e-6, float(np.log(p90 / median)) / Z90)

    unclipped_mean = float(np.exp(mu + sigma**2 / 2))
    if unclipped_mean <= mean:
        return LengthDistribution(median, sigma, max_cap, min_value)

    lo, hi = p90, max_cap
    if _clipped_lognormal_mean(mu, sigma, lo) > mean:
        # Even clipping at the P90 overshoots: accept the P90 clip (keeps the
        # published tail quantile intact at minor cost to the mean).
        return LengthDistribution(median, sigma, lo, min_value)
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if _clipped_lognormal_mean(mu, sigma, mid) < mean:
            lo = mid
        else:
            hi = mid
    return LengthDistribution(median, sigma, 0.5 * (lo + hi), min_value)
