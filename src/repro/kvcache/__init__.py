"""Paged KV-cache management: block manager, CPU swap pool, transfer engine."""

from repro.kvcache.blocks import BlockLocation, KVAllocation, KVBlockManager
from repro.kvcache.prefix import PrefixCacheIndex, PrefixCacheStats
from repro.kvcache.transfer import KVTransferEngine, TransferJob

__all__ = [
    "BlockLocation",
    "KVAllocation",
    "KVBlockManager",
    "PrefixCacheIndex",
    "PrefixCacheStats",
    "KVTransferEngine",
    "TransferJob",
]
