"""KV-cache transfer engine.

Moves KV bytes between serving instances (prefill -> decode hand-off,
rescheduling migrations) and between a GPU and host DRAM (swapping).  KV is
sharded across an instance's GPUs, so an instance-to-instance copy is a set
of pairwise GPU copies; completion is when the slowest pair drains.

Transfers reserve link bandwidth through the topology's FIFO links, so bulk
KV movement, swap traffic, and migrations all contend for the same PCIe
switches — the contention at the heart of the paper's Fig. 1 motivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.hardware.topology import NodeTopology
from repro.sim.engine import Simulator


@dataclass
class TransferJob:
    """One in-flight KV transfer."""

    job_id: int
    nbytes: int
    src_gpus: tuple[int, ...]
    dst_gpus: tuple[int, ...]
    start: float
    finish: float
    kind: str = "kv"
    meta: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.finish - self.start


class KVTransferEngine:
    """Schedules KV copies over the node topology."""

    def __init__(self, sim: Simulator, topology: NodeTopology) -> None:
        self.sim = sim
        self.topology = topology
        self._next_id = 0
        self.completed: list[TransferJob] = []
        self.bytes_moved = 0

    # -- planning ---------------------------------------------------------

    def estimate_duration(
        self, nbytes: int, src_gpus: list[int], dst_gpus: list[int]
    ) -> float:
        """Unqueued wire time for an instance-to-instance copy of ``nbytes``."""
        pairs = self._pairs(src_gpus, dst_gpus)
        per_pair = nbytes / len(pairs)
        return max(
            self.topology.path(s, d).transfer_duration(int(per_pair)) for s, d in pairs
        )

    # -- instance-to-instance ------------------------------------------------

    def transfer(
        self,
        nbytes: int,
        src_gpus: list[int],
        dst_gpus: list[int],
        on_complete: Optional[Callable[[TransferJob], None]] = None,
        kind: str = "kv",
        **meta,
    ) -> TransferJob:
        """Copy ``nbytes`` of sharded KV from one instance's GPUs to another's.

        Bytes split evenly over GPU pairs; each pair's copy queues FIFO on its
        link path.  ``on_complete`` fires when the slowest pair finishes.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        pairs = self._pairs(src_gpus, dst_gpus)
        per_pair = int(nbytes / len(pairs)) if nbytes else 0
        now = self.sim.now
        finish = now
        start = None
        for s, d in pairs:
            res = self.topology.path(s, d).reserve(now, per_pair)
            finish = max(finish, res.finish)
            start = res.start if start is None else min(start, res.start)
        job = self._make_job(nbytes, tuple(src_gpus), tuple(dst_gpus), start or now, finish, kind, meta)
        self._finalize(job, on_complete)
        return job

    # -- GPU <-> host (swap) ----------------------------------------------------

    def swap(
        self,
        nbytes: int,
        gpus: list[int],
        on_complete: Optional[Callable[[TransferJob], None]] = None,
        kind: str = "swap",
        **meta,
    ) -> TransferJob:
        """Copy ``nbytes`` between an instance's GPUs and host DRAM."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if not gpus:
            raise ValueError("need at least one GPU")
        per_gpu = int(nbytes / len(gpus)) if nbytes else 0
        now = self.sim.now
        finish = now
        start = None
        for g in gpus:
            res = self.topology.host_path(g).reserve(now, per_gpu)
            finish = max(finish, res.finish)
            start = res.start if start is None else min(start, res.start)
        job = self._make_job(nbytes, tuple(gpus), ("host",), start or now, finish, kind, meta)  # type: ignore[arg-type]
        self._finalize(job, on_complete)
        return job

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _pairs(src_gpus: list[int], dst_gpus: list[int]) -> list[tuple[int, int]]:
        if not src_gpus or not dst_gpus:
            raise ValueError("source and destination instances need GPUs")
        n = max(len(src_gpus), len(dst_gpus))
        return [(src_gpus[i % len(src_gpus)], dst_gpus[i % len(dst_gpus)]) for i in range(n)]

    def _make_job(
        self,
        nbytes: int,
        src: tuple,
        dst: tuple,
        start: float,
        finish: float,
        kind: str,
        meta: dict,
    ) -> TransferJob:
        job = TransferJob(
            job_id=self._next_id,
            nbytes=nbytes,
            src_gpus=src,
            dst_gpus=dst,
            start=start,
            finish=finish,
            kind=kind,
            meta=meta,
        )
        self._next_id += 1
        return job

    def _finalize(self, job: TransferJob, on_complete) -> None:
        self.bytes_moved += job.nbytes

        def _done() -> None:
            self.completed.append(job)
            if on_complete is not None:
                on_complete(job)

        self.sim.call_at(job.finish, _done)
