"""KV-cache transfer engine.

Moves KV bytes between serving instances (prefill -> decode hand-off,
rescheduling migrations) and between a GPU and host DRAM (swapping).  KV is
sharded across an instance's GPUs, so an instance-to-instance copy is a set
of pairwise GPU copies; completion is when the slowest pair drains.

Transfers reserve link bandwidth through the topology's FIFO links, so bulk
KV movement, swap traffic, and migrations all contend for the same PCIe
switches — the contention at the heart of the paper's Fig. 1 motivation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, TYPE_CHECKING

from repro.hardware.topology import NodeTopology
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.links import LinkFaultModel
    from repro.serving.metrics import MetricsCollector
    from repro.sim.trace import TraceLog


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for transfers launched into a link outage."""

    backoff_s: float = 0.02
    multiplier: float = 2.0
    max_retries: int = 8


@dataclass
class TransferJob:
    """One in-flight KV transfer."""

    job_id: int
    nbytes: int
    src_gpus: tuple[int, ...]
    dst_gpus: tuple[int, ...]
    start: float
    finish: float
    kind: str = "kv"
    meta: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.finish - self.start


class KVTransferEngine:
    """Schedules KV copies over the node topology."""

    def __init__(
        self,
        sim: Simulator,
        topology: NodeTopology,
        metrics: Optional["MetricsCollector"] = None,
        trace: Optional["TraceLog"] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.sim = sim
        self.topology = topology
        self._next_id = 0
        self.completed: list[TransferJob] = []
        self.failed: list[TransferJob] = []
        self.bytes_moved = 0
        self.metrics = metrics
        self.trace = trace
        self.retry = retry or RetryPolicy()
        # Installed by the fault injector; None in fault-free runs.
        self.fault_model: Optional["LinkFaultModel"] = None
        # Permanent-failure escalation: kinds whose loss the owning system
        # can absorb get ``on_failure(job)``; everything else (e.g. swaps)
        # stalls until the path recovers instead of failing.
        self.on_failure: Optional[Callable[[TransferJob], None]] = None
        self.failure_kinds: frozenset[str] = frozenset()

    # -- planning ---------------------------------------------------------

    def estimate_duration(
        self, nbytes: int, src_gpus: list[int], dst_gpus: list[int]
    ) -> float:
        """Unqueued wire time for an instance-to-instance copy of ``nbytes``."""
        pairs = self._pairs(src_gpus, dst_gpus)
        per_pair = nbytes / len(pairs)
        return max(
            self.topology.path(s, d).transfer_duration(int(per_pair)) for s, d in pairs
        )

    # -- instance-to-instance ------------------------------------------------

    def transfer(
        self,
        nbytes: int,
        src_gpus: list[int],
        dst_gpus: list[int],
        on_complete: Optional[Callable[[TransferJob], None]] = None,
        kind: str = "kv",
        **meta,
    ) -> TransferJob:
        """Copy ``nbytes`` of sharded KV from one instance's GPUs to another's.

        Bytes split evenly over GPU pairs; each pair's copy queues FIFO on its
        link path.  ``on_complete`` fires when the slowest pair finishes.
        """
        if nbytes < 0:
            raise ValueError("negative transfer size")
        pairs = self._pairs(src_gpus, dst_gpus)
        per_pair = int(nbytes / len(pairs)) if nbytes else 0
        paths = [self.topology.path(s, d) for s, d in pairs]
        links = {link.name: link for path in paths for link in path.links}
        attempt, gave_up = self._resolve_outages(list(links.values()), kind, meta)
        if gave_up:
            return self._fail_job(
                nbytes, tuple(src_gpus), tuple(dst_gpus), attempt, kind, meta
            )
        finish = attempt
        start = None
        for path in paths:
            res = path.reserve(attempt, per_pair)
            finish = max(finish, res.finish)
            start = res.start if start is None else min(start, res.start)
        job = self._make_job(
            nbytes, tuple(src_gpus), tuple(dst_gpus), start or attempt, finish, kind, meta
        )
        self._finalize(job, on_complete)
        return job

    # -- GPU <-> host (swap) ----------------------------------------------------

    def swap(
        self,
        nbytes: int,
        gpus: list[int],
        on_complete: Optional[Callable[[TransferJob], None]] = None,
        kind: str = "swap",
        **meta,
    ) -> TransferJob:
        """Copy ``nbytes`` between an instance's GPUs and host DRAM."""
        if nbytes < 0:
            raise ValueError("negative transfer size")
        if not gpus:
            raise ValueError("need at least one GPU")
        per_gpu = int(nbytes / len(gpus)) if nbytes else 0
        paths = [self.topology.host_path(g) for g in gpus]
        links = {link.name: link for path in paths for link in path.links}
        attempt, gave_up = self._resolve_outages(list(links.values()), kind, meta)
        if gave_up:
            return self._fail_job(nbytes, tuple(gpus), ("host",), attempt, kind, meta)  # type: ignore[arg-type]
        finish = attempt
        start = None
        for path in paths:
            res = path.reserve(attempt, per_gpu)
            finish = max(finish, res.finish)
            start = res.start if start is None else min(start, res.start)
        job = self._make_job(nbytes, tuple(gpus), ("host",), start or attempt, finish, kind, meta)  # type: ignore[arg-type]
        self._finalize(job, on_complete)
        return job

    # -- outage handling (retry with backoff) -------------------------------------

    def _resolve_outages(self, links: list, kind: str, meta: dict) -> tuple[float, bool]:
        """Walk the retry schedule through any outage windows on ``links``.

        Returns ``(attempt_time, gave_up)``.  The schedule is computed
        synchronously from the installed outage windows, so the returned
        job's ``finish`` is valid immediately — no call site changes.  When
        retries are exhausted, kinds listed in ``failure_kinds`` fail
        permanently (``gave_up=True``); all others stall until the path
        recovers, because nobody could absorb the loss.
        """
        now = self.sim.now
        model = self.fault_model
        if model is None or not model.is_down(now, links):
            return now, False
        policy = self.retry
        attempt, retries = now, 0
        while model.is_down(attempt, links):
            if retries >= policy.max_retries:
                if self.on_failure is not None and kind in self.failure_kinds:
                    self._record_retries(retries, kind, meta)
                    return attempt, True
                attempt = model.up_after(attempt, links)
                if self.metrics is not None:
                    self.metrics.bump("transfer_stalled")
                break
            attempt += policy.backoff_s * policy.multiplier**retries
            retries += 1
        self._record_retries(retries, kind, meta)
        return attempt, False

    def _record_retries(self, retries: int, kind: str, meta: dict) -> None:
        if not retries:
            return
        if self.metrics is not None:
            self.metrics.bump("transfer_retries", retries)
        if self.trace is not None:
            self.trace.emit(
                self.sim.now,
                "transfers",
                "transfer-retry",
                kind=kind,
                retries=retries,
                request_id=meta.get("request_id"),
            )

    def _fail_job(
        self, nbytes: int, src: tuple, dst: tuple, at: float, kind: str, meta: dict
    ) -> TransferJob:
        """Report a permanently failed transfer to the owning system."""
        job = self._make_job(nbytes, src, dst, at, at, kind, meta)
        job.meta["failed"] = True

        def _report() -> None:
            self.failed.append(job)
            if self.metrics is not None:
                self.metrics.bump("transfer_failed")
            assert self.on_failure is not None
            self.on_failure(job)

        self.sim.call_at(at, _report)
        return job

    # -- internals ---------------------------------------------------------------

    @staticmethod
    def _pairs(src_gpus: list[int], dst_gpus: list[int]) -> list[tuple[int, int]]:
        if not src_gpus or not dst_gpus:
            raise ValueError("source and destination instances need GPUs")
        n = max(len(src_gpus), len(dst_gpus))
        return [(src_gpus[i % len(src_gpus)], dst_gpus[i % len(dst_gpus)]) for i in range(n)]

    def _make_job(
        self,
        nbytes: int,
        src: tuple,
        dst: tuple,
        start: float,
        finish: float,
        kind: str,
        meta: dict,
    ) -> TransferJob:
        job = TransferJob(
            job_id=self._next_id,
            nbytes=nbytes,
            src_gpus=src,
            dst_gpus=dst,
            start=start,
            finish=finish,
            kind=kind,
            meta=meta,
        )
        self._next_id += 1
        return job

    def _finalize(self, job: TransferJob, on_complete) -> None:
        self.bytes_moved += job.nbytes

        def _done() -> None:
            self.completed.append(job)
            if on_complete is not None:
                on_complete(job)

        self.sim.call_at(job.finish, _done)
