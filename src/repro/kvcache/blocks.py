"""PagedAttention-style KV block manager.

KV cache is allocated in fixed-size blocks of tokens (vLLM's design, which
the paper adopts).  The manager tracks, per request, how many tokens are
cached and where the blocks live (GPU or swapped to CPU DRAM).  All
accounting is instance-level: an instance's pool aggregates the KV budget of
its GPUs, since KV tensors shard evenly across TP/PP ranks.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass

from repro.hardware.memory import MemoryPool, OutOfMemoryError


class BlockLocation(enum.Enum):
    GPU = "gpu"
    CPU = "cpu"


@dataclass
class KVAllocation:
    """Book-keeping for one request's cached KV."""

    request_id: int
    tokens: int
    blocks: int
    location: BlockLocation

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"KVAllocation(req={self.request_id}, tokens={self.tokens}, "
            f"blocks={self.blocks}, {self.location.value})"
        )


class KVBlockManager:
    """Allocates KV blocks for requests against a GPU pool and a CPU swap pool.

    Args:
        gpu_capacity_tokens: Total tokens' worth of KV the instance can hold
            in GPU memory.
        cpu_capacity_tokens: Swap-pool capacity (CPU DRAM), in tokens.
        block_size: Tokens per block (vLLM default 16).
        bytes_per_token: KV bytes per cached token across the instance
            (for transfer-size computations).
    """

    def __init__(
        self,
        gpu_capacity_tokens: int,
        cpu_capacity_tokens: int,
        block_size: int,
        bytes_per_token: float,
    ) -> None:
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self.block_size = block_size
        self.bytes_per_token = bytes_per_token
        self.gpu_capacity_blocks = gpu_capacity_tokens // block_size
        self.cpu_capacity_blocks = cpu_capacity_tokens // block_size
        self._gpu = MemoryPool(self.gpu_capacity_blocks, name="kv-gpu-blocks")
        self._cpu = MemoryPool(self.cpu_capacity_blocks, name="kv-cpu-blocks")
        self._allocations: dict[int, KVAllocation] = {}
        # Lifecycle audit: how often each request id was allocated/adopted
        # into this manager and freed out of it, plus frees that found no
        # allocation.  The differential runner asserts every allocation is
        # matched by exactly one free at drain.
        self.alloc_events: Counter[int] = Counter()
        self.free_events: Counter[int] = Counter()
        self.redundant_frees: int = 0

    # -- introspection -------------------------------------------------------

    def blocks_for(self, tokens: int) -> int:
        # Integer ceiling division: exact for any token count, unlike
        # float-division ceil, and measurably cheaper on the hot path.
        return -(-tokens // self.block_size)

    @property
    def free_gpu_blocks(self) -> int:
        return self._gpu.free

    @property
    def used_gpu_blocks(self) -> int:
        return self._gpu.used

    @property
    def gpu_utilization(self) -> float:
        return self._gpu.utilization

    @property
    def free_gpu_tokens(self) -> int:
        return self._gpu.free * self.block_size

    @property
    def free_cpu_blocks(self) -> int:
        return self._cpu.free

    def has(self, request_id: int) -> bool:
        return request_id in self._allocations

    def get(self, request_id: int) -> KVAllocation:
        return self._allocations[request_id]

    def tokens_of(self, request_id: int) -> int:
        alloc = self._allocations.get(request_id)
        return alloc.tokens if alloc else 0

    def bytes_of(self, request_id: int) -> int:
        return int(self.tokens_of(request_id) * self.bytes_per_token)

    def residents(self, location: BlockLocation = BlockLocation.GPU) -> list[KVAllocation]:
        """Allocations currently at ``location``."""
        return [a for a in self._allocations.values() if a.location == location]

    def can_allocate(self, tokens: int) -> bool:
        return self.blocks_for(tokens) <= self._gpu.free

    def can_extend(self, request_id: int, new_tokens: int) -> bool:
        alloc = self._allocations.get(request_id)
        if alloc is None:
            return self.can_allocate(new_tokens)
        needed = self.blocks_for(alloc.tokens + new_tokens) - alloc.blocks
        return needed <= self._gpu.free

    # -- allocation ----------------------------------------------------------

    def allocate(self, request_id: int, tokens: int) -> KVAllocation:
        """Allocate GPU blocks for a new request's ``tokens`` of KV."""
        if request_id in self._allocations:
            raise ValueError(f"request {request_id} already has an allocation")
        blocks = self.blocks_for(tokens)
        self._gpu.reserve(blocks)
        alloc = KVAllocation(request_id, tokens, blocks, BlockLocation.GPU)
        self._allocations[request_id] = alloc
        self.alloc_events[request_id] += 1
        return alloc

    def extend(self, request_id: int, new_tokens: int) -> KVAllocation:
        """Grow a request's cached KV by ``new_tokens`` (decode appends)."""
        alloc = self._allocations.get(request_id)
        if alloc is None:
            return self.allocate(request_id, new_tokens)
        if alloc.location != BlockLocation.GPU:
            raise ValueError(f"request {request_id} is swapped out; swap in first")
        needed = self.blocks_for(alloc.tokens + new_tokens) - alloc.blocks
        if needed > 0:
            self._gpu.reserve(needed)
            alloc.blocks += needed
        alloc.tokens += new_tokens
        return alloc

    def free(self, request_id: int) -> None:
        """Release all blocks of a finished/migrated request."""
        alloc = self._allocations.pop(request_id, None)
        if alloc is None:
            self.redundant_frees += 1
            return
        pool = self._gpu if alloc.location == BlockLocation.GPU else self._cpu
        pool.release(alloc.blocks)
        self.free_events[request_id] += 1

    def adopt(self, request_id: int, tokens: int, location: BlockLocation) -> KVAllocation:
        """Re-register an allocation carried over from another manager
        (instance reconfiguration keeps live KV across a restart)."""
        if request_id in self._allocations:
            raise ValueError(f"request {request_id} already has an allocation")
        blocks = self.blocks_for(tokens)
        pool = self._gpu if location == BlockLocation.GPU else self._cpu
        pool.reserve(blocks)
        alloc = KVAllocation(request_id, tokens, blocks, location)
        self._allocations[request_id] = alloc
        self.alloc_events[request_id] += 1
        return alloc

    # -- swapping --------------------------------------------------------------

    def swap_out(self, request_id: int) -> int:
        """Move a request's blocks GPU -> CPU; returns bytes to transfer."""
        alloc = self._allocations[request_id]
        if alloc.location != BlockLocation.GPU:
            raise ValueError(f"request {request_id} is already swapped out")
        try:
            self._cpu.reserve(alloc.blocks)
        except OutOfMemoryError:
            raise OutOfMemoryError(
                f"CPU swap pool full while swapping out request {request_id}"
            ) from None
        self._gpu.release(alloc.blocks)
        alloc.location = BlockLocation.CPU
        return int(alloc.tokens * self.bytes_per_token)

    def can_swap_in(self, request_id: int) -> bool:
        alloc = self._allocations[request_id]
        return alloc.blocks <= self._gpu.free

    def swap_in(self, request_id: int) -> int:
        """Move a request's blocks CPU -> GPU; returns bytes to transfer."""
        alloc = self._allocations[request_id]
        if alloc.location != BlockLocation.CPU:
            raise ValueError(f"request {request_id} is not swapped out")
        self._gpu.reserve(alloc.blocks)
        self._cpu.release(alloc.blocks)
        alloc.location = BlockLocation.GPU
        return int(alloc.tokens * self.bytes_per_token)
