"""Automatic prefix caching: a refcounted reuse index over the KV pool.

Shared system prompts and few-shot headers mean many prompts start with the
same tokens, so their prefill recomputes KV an earlier request already
produced.  :class:`PrefixCacheIndex` keeps the KV of recently computed
prefixes resident (vLLM-style automatic prefix caching): the first request
carrying a prefix computes it and *publishes* the blocks; followers
*acquire* them — skipping that many prefill tokens via the same
shortened-prefill path the §3.3 backup re-prefill uses — and release their
hold when their own prefill completes.

The index allocates its blocks from the owning instance's
:class:`~repro.kvcache.blocks.KVBlockManager` under synthetic **negative**
request ids, one fresh id per published entry, so the existing
alloc/free-balanced KV-lifecycle audits cover the cache with no special
cases.  Entries are evicted LRU, but never while a holder still references
them; eviction happens when publishing over capacity or when the instance
needs pool headroom for live requests (the cache always yields to demand).

The index itself is pure book-keeping — no simulator, no RNG — and every
operation is deterministic given the call order, so enabling it perturbs
nothing outside the runs that opt in via
``InstanceConfig.prefix_cache_tokens``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.kvcache.blocks import KVBlockManager


@dataclass
class PrefixEntry:
    """One cached prefix: shared KV blocks plus reference accounting."""

    prefix_hash: int
    tokens: int
    alloc_id: int  # synthetic (negative) request id in the KV manager
    refcount: int = 0
    last_used: int = 0  # logical LRU clock tick

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PrefixEntry(hash={self.prefix_hash}, tokens={self.tokens}, "
            f"refs={self.refcount})"
        )


@dataclass
class PrefixCacheStats:
    """Cumulative accounting for one index instance."""

    hits: int = 0
    misses: int = 0
    tokens_served: int = 0  # prefill tokens holders skipped
    inserted_tokens: int = 0
    evictions: int = 0
    insert_skipped: int = 0  # publishes dropped for lack of pool space

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "tokens_served": self.tokens_served,
            "inserted_tokens": self.inserted_tokens,
            "evictions": self.evictions,
            "insert_skipped": self.insert_skipped,
        }


@dataclass
class PrefixCacheIndex:
    """Refcounted, LRU-evicted index of warm prefix KV.

    Args:
        kv: The owning instance's block manager; all cache blocks live in
            its GPU pool and count against its capacity.
        capacity_tokens: Upper bound on tokens the cache may keep resident.
            ``0`` disables publishing entirely (every lookup misses).
    """

    kv: KVBlockManager
    capacity_tokens: int
    stats: PrefixCacheStats = field(default_factory=PrefixCacheStats)

    def __post_init__(self) -> None:
        self._entries: dict[int, PrefixEntry] = {}
        self._holders: dict[int, int] = {}  # request_id -> prefix_hash
        self._clock = 0
        self._next_alloc_id = -1  # fresh negative id per published entry

    # -- introspection -------------------------------------------------------

    @property
    def resident_tokens(self) -> int:
        return sum(entry.tokens for entry in self._entries.values())

    @property
    def num_entries(self) -> int:
        return len(self._entries)

    def lookup(self, prefix_hash: int) -> int:
        """Warm tokens cached for ``prefix_hash`` (0 if cold); no refcount."""
        entry = self._entries.get(prefix_hash)
        return entry.tokens if entry is not None else 0

    def holding(self, request_id: int) -> bool:
        return request_id in self._holders

    def bytes_saved(self) -> int:
        return int(self.stats.tokens_served * self.kv.bytes_per_token)

    # -- the holder protocol ---------------------------------------------------

    def acquire(self, request_id: int, prefix_hash: int, want_tokens: int) -> int:
        """Take a reference for ``request_id`` on a warm prefix.

        Returns the number of prefill tokens the holder may skip (0 on a
        cold miss).  Idempotent per request: a second acquire by the same
        holder re-reports the original grant without re-counting.
        """
        if request_id in self._holders:
            entry = self._entries.get(self._holders[request_id])
            return min(entry.tokens, want_tokens) if entry is not None else 0
        entry = self._entries.get(prefix_hash)
        if entry is None or want_tokens <= 0:
            self.stats.misses += 1
            return 0
        entry.refcount += 1
        self._touch(entry)
        self._holders[request_id] = prefix_hash
        served = min(entry.tokens, want_tokens)
        self.stats.hits += 1
        self.stats.tokens_served += served
        return served

    def release(self, request_id: int) -> None:
        """Drop ``request_id``'s reference (idempotent; safe after reset)."""
        prefix_hash = self._holders.pop(request_id, None)
        if prefix_hash is None:
            return
        entry = self._entries.get(prefix_hash)
        if entry is not None and entry.refcount > 0:
            entry.refcount -= 1

    def insert(self, prefix_hash: int, tokens: int) -> bool:
        """Publish a freshly computed prefix (the cold request's compute).

        Evicts LRU unreferenced entries to stay within ``capacity_tokens``
        and to find pool headroom; skips silently (counted) if the pool
        cannot host the blocks even then.  Returns True if published.
        """
        if tokens <= 0 or self.capacity_tokens <= 0 or tokens > self.capacity_tokens:
            self.stats.insert_skipped += 1
            return False
        existing = self._entries.get(prefix_hash)
        if existing is not None:
            self._touch(existing)
            return True
        while self.resident_tokens + tokens > self.capacity_tokens:
            if not self._evict_one():
                self.stats.insert_skipped += 1
                return False
        if not self.kv.can_allocate(tokens):
            self.evict_unreferenced(tokens)
            if not self.kv.can_allocate(tokens):
                self.stats.insert_skipped += 1
                return False
        alloc_id = self._next_alloc_id
        self._next_alloc_id -= 1
        self.kv.allocate(alloc_id, tokens)
        entry = PrefixEntry(prefix_hash=prefix_hash, tokens=tokens, alloc_id=alloc_id)
        self._touch(entry)
        self._entries[prefix_hash] = entry
        self.stats.inserted_tokens += tokens
        return True

    # -- eviction & lifecycle ---------------------------------------------------

    def evict_unreferenced(self, tokens_needed: int) -> int:
        """Evict LRU unreferenced entries until ``tokens_needed`` fit the
        pool (live traffic always beats the cache).  Returns entries freed."""
        freed = 0
        while not self.kv.can_allocate(tokens_needed):
            if not self._evict_one():
                break
            freed += 1
        return freed

    def _evict_one(self) -> bool:
        victim: Optional[PrefixEntry] = None
        for entry in self._entries.values():
            if entry.refcount > 0:
                continue
            if victim is None or entry.last_used < victim.last_used:
                victim = entry
        if victim is None:
            return False
        del self._entries[victim.prefix_hash]
        self.kv.free(victim.alloc_id)
        self.stats.evictions += 1
        return True

    def drain(self) -> None:
        """Free every cached entry back to the pool (end-of-run cleanup,
        instance reconfiguration).  Outstanding holds are dropped."""
        for entry in self._entries.values():
            self.kv.free(entry.alloc_id)
        self._entries.clear()
        self._holders.clear()

    def reset(self) -> None:
        """Forget everything *without* freeing blocks.

        Used after :meth:`Instance.fail`, which already freed every resident
        allocation (including the cache's synthetic ids) while zeroing the
        pool — freeing again here would double-count in the lifecycle audit.
        """
        self._entries.clear()
        self._holders.clear()

    def _touch(self, entry: PrefixEntry) -> None:
        self._clock += 1
        entry.last_used = self._clock
