"""Model architecture specs, cost formulas (paper Table 1), and parallelism maths."""

from repro.models.spec import ModelSpec
from repro.models.registry import (
    MODEL_REGISTRY,
    get_model,
    OPT_13B,
    OPT_66B,
    LLAMA2_13B,
    LLAMA2_70B,
)
from repro.models.costs import (
    attn_flops_prefill,
    attn_flops_decode,
    ffn_flops_prefill,
    ffn_flops_decode,
    layer_flops_prefill,
    layer_flops_decode,
    layer_io_bytes_prefill,
    layer_io_bytes_decode,
    model_flops_prefill,
    model_flops_decode,
    model_io_bytes_prefill,
    model_io_bytes_decode,
)
from repro.models.parallelism import ParallelConfig

__all__ = [
    "ModelSpec",
    "MODEL_REGISTRY",
    "get_model",
    "OPT_13B",
    "OPT_66B",
    "LLAMA2_13B",
    "LLAMA2_70B",
    "attn_flops_prefill",
    "attn_flops_decode",
    "ffn_flops_prefill",
    "ffn_flops_decode",
    "layer_flops_prefill",
    "layer_flops_decode",
    "layer_io_bytes_prefill",
    "layer_io_bytes_decode",
    "model_flops_prefill",
    "model_flops_decode",
    "model_io_bytes_prefill",
    "model_io_bytes_decode",
    "ParallelConfig",
]
