"""Registry of the OPT and LLaMA2 model families used in the paper."""

from __future__ import annotations

from repro.models.spec import ModelSpec


def _opt(name: str, layers: int, hidden: int, heads: int) -> ModelSpec:
    """OPT family: GELU MLP with 4H intermediate, MHA, 2K context."""
    return ModelSpec(
        name=name,
        num_layers=layers,
        hidden_size=hidden,
        num_heads=heads,
        num_kv_heads=heads,
        ffn_dim=4 * hidden,
        ffn_matrices=2,
        vocab_size=50272,
        max_context=2048,
    )


def _llama2(
    name: str, layers: int, hidden: int, heads: int, kv_heads: int, ffn: int
) -> ModelSpec:
    """LLaMA2 family: SwiGLU MLP (3 matrices), 4K context, GQA on 70B."""
    return ModelSpec(
        name=name,
        num_layers=layers,
        hidden_size=hidden,
        num_heads=heads,
        num_kv_heads=kv_heads,
        ffn_dim=ffn,
        ffn_matrices=3,
        vocab_size=32000,
        max_context=4096,
    )


OPT_125M = _opt("opt-125m", 12, 768, 12)
OPT_1_3B = _opt("opt-1.3b", 24, 2048, 32)
OPT_2_7B = _opt("opt-2.7b", 32, 2560, 32)
OPT_6_7B = _opt("opt-6.7b", 32, 4096, 32)
OPT_13B = _opt("opt-13b", 40, 5120, 40)
OPT_30B = _opt("opt-30b", 48, 7168, 56)
OPT_66B = _opt("opt-66b", 64, 9216, 72)
OPT_175B = _opt("opt-175b", 96, 12288, 96)

LLAMA2_7B = _llama2("llama2-7b", 32, 4096, 32, 32, 11008)
LLAMA2_13B = _llama2("llama2-13b", 40, 5120, 40, 40, 13824)
LLAMA2_70B = _llama2("llama2-70b", 80, 8192, 64, 8, 28672)


def _gpt3(name: str, layers: int, hidden: int, heads: int) -> ModelSpec:
    """GPT-3 family (paper intro cites GPT): GELU MLP, MHA, 2K context."""
    return ModelSpec(
        name=name,
        num_layers=layers,
        hidden_size=hidden,
        num_heads=heads,
        num_kv_heads=heads,
        ffn_dim=4 * hidden,
        ffn_matrices=2,
        vocab_size=50257,
        max_context=2048,
    )


GPT3_6_7B = _gpt3("gpt3-6.7b", 32, 4096, 32)
GPT3_13B = _gpt3("gpt3-13b", 40, 5120, 40)
GPT3_175B = _gpt3("gpt3-175b", 96, 12288, 96)

# GLM family (paper intro cites GLM); GLM-130B: 70 layers, 12288 hidden,
# 96 heads, GeGLU FFN (~2/3 of 4H per matrix, 3 matrices).
GLM_130B = ModelSpec(
    name="glm-130b",
    num_layers=70,
    hidden_size=12288,
    num_heads=96,
    num_kv_heads=96,
    ffn_dim=32768,
    ffn_matrices=3,
    vocab_size=150528,
    max_context=2048,
)

MODEL_REGISTRY: dict[str, ModelSpec] = {
    spec.name: spec
    for spec in (
        OPT_125M,
        OPT_1_3B,
        OPT_2_7B,
        OPT_6_7B,
        OPT_13B,
        OPT_30B,
        OPT_66B,
        OPT_175B,
        LLAMA2_7B,
        LLAMA2_13B,
        LLAMA2_70B,
        GPT3_6_7B,
        GPT3_13B,
        GPT3_175B,
        GLM_130B,
    )
}


def get_model(name: str) -> ModelSpec:
    """Look up a model spec by name (case-insensitive)."""
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[key]
