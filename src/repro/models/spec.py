"""Decoder-only transformer architecture description.

Everything the scheduler cares about — KV bytes per token, weight bytes,
FLOPs, IO — is a function of these static fields; no weights are needed.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ModelSpec:
    """Architecture of a decoder-only LLM.

    Attributes:
        name: Model name, e.g. ``"opt-13b"``.
        num_layers: Transformer layer count.
        hidden_size: Model dimension ``H``.
        num_heads: Attention (query) heads.
        num_kv_heads: Key/value heads; ``< num_heads`` means GQA (LLaMA2-70B).
        ffn_dim: FFN intermediate dimension (``4H`` for OPT, SwiGLU dims for
            LLaMA).
        ffn_matrices: Weight matrices in the FFN (2 for GELU MLPs, 3 for
            SwiGLU).
        vocab_size: Vocabulary size (embedding / LM-head cost).
        max_context: Maximum supported context length in tokens.
        dtype_bytes: Bytes per parameter / activation element (2 for FP16).
    """

    name: str
    num_layers: int
    hidden_size: int
    num_heads: int
    num_kv_heads: int
    ffn_dim: int
    ffn_matrices: int
    vocab_size: int
    max_context: int
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError("hidden_size must be divisible by num_heads")
        if self.num_heads % self.num_kv_heads != 0:
            raise ValueError("num_heads must be divisible by num_kv_heads")

    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    @property
    def kv_dim(self) -> int:
        """Total width of the K (or V) projection output."""
        return self.num_kv_heads * self.head_dim

    @property
    def uses_gqa(self) -> bool:
        return self.num_kv_heads < self.num_heads

    @property
    def kv_bytes_per_token_per_layer(self) -> int:
        """K + V bytes cached for one token in one layer."""
        return 2 * self.kv_dim * self.dtype_bytes

    @property
    def kv_bytes_per_token(self) -> int:
        """K + V bytes cached for one token across all layers."""
        return self.num_layers * self.kv_bytes_per_token_per_layer

    @property
    def attn_params_per_layer(self) -> int:
        """Q, K, V, O projection parameters in one layer."""
        h, kv = self.hidden_size, self.kv_dim
        return h * h + 2 * h * kv + h * h  # Q + (K,V) + O

    @property
    def ffn_params_per_layer(self) -> int:
        return self.ffn_matrices * self.hidden_size * self.ffn_dim

    @property
    def params_per_layer(self) -> int:
        return self.attn_params_per_layer + self.ffn_params_per_layer

    @property
    def embedding_params(self) -> int:
        """Token embedding + LM head (untied)."""
        return 2 * self.vocab_size * self.hidden_size

    @property
    def total_params(self) -> int:
        return self.num_layers * self.params_per_layer + self.embedding_params

    @property
    def weight_bytes(self) -> int:
        return self.total_params * self.dtype_bytes

    @property
    def weight_bytes_per_layer(self) -> int:
        return self.params_per_layer * self.dtype_bytes

    def kv_bytes(self, tokens: int) -> int:
        """KV-cache footprint of ``tokens`` context tokens, all layers."""
        return tokens * self.kv_bytes_per_token

    def __str__(self) -> str:
        return self.name
