"""Tensor / pipeline parallelism partitioning and communication costs.

The paper's placement notation ``[TP-a, PP-b]`` means ``a``-way tensor
parallelism inside each of ``b`` pipeline stages (``a*b`` GPUs per instance).
We model:

* TP: per-GPU FLOPs/IO divided by ``tp`` (with an efficiency knob for kernel
  shrinkage) plus two ring all-reduces per layer over the TP group's link.
* PP: layers split across ``pp`` stages; one batch's latency spans all
  stages, and up to ``pp`` batches are in flight at once (pipelining), which
  the serving engine models as ``pp`` concurrent execution slots.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.spec import ModelSpec

GB = 1024**3


@dataclass(frozen=True)
class ParallelConfig:
    """Parallelism degree of one serving instance.

    Attributes:
        tp: Tensor-parallel ways within each pipeline stage.
        pp: Pipeline stages.
        tp_link_gbps: Per-direction bandwidth of the link joining the TP
            group (NVLink bridge for TP-2 pairs on the testbed).
        tp_efficiency: Scaling efficiency of TP kernels (smaller GEMMs run a
            bit below linear speed-up).
    """

    tp: int = 1
    pp: int = 1
    tp_link_gbps: float = 200.0
    tp_efficiency: float = 0.92

    def __post_init__(self) -> None:
        if self.tp < 1 or self.pp < 1:
            raise ValueError("tp and pp must be >= 1")

    @property
    def num_gpus(self) -> int:
        return self.tp * self.pp

    def label(self) -> str:
        return f"TP-{self.tp}, PP-{self.pp}"

    # -- per-GPU work division ------------------------------------------------

    def shard_flops(self, flops: float) -> float:
        """FLOPs each TP rank executes for a batch (whole model)."""
        if self.tp == 1:
            return flops
        return flops / (self.tp * self.tp_efficiency)

    def shard_io_bytes(self, io_bytes: float) -> float:
        """HBM bytes each TP rank moves for a batch (whole model)."""
        if self.tp == 1:
            return io_bytes
        return io_bytes / (self.tp * self.tp_efficiency)

    # -- communication ---------------------------------------------------------

    def tp_allreduce_time(self, spec: ModelSpec, tokens: int) -> float:
        """Time for the TP all-reduces of one full forward pass.

        Two all-reduces per layer (attention output, FFN output), each over a
        ``tokens x H`` FP16 activation, ring algorithm:
        ``2 (tp-1)/tp * bytes / bw`` per all-reduce.
        """
        if self.tp == 1 or tokens == 0:
            return 0.0
        bytes_per_allreduce = tokens * spec.hidden_size * spec.dtype_bytes
        ring_factor = 2 * (self.tp - 1) / self.tp
        per_allreduce = ring_factor * bytes_per_allreduce / (self.tp_link_gbps * GB)
        launch_overhead = 10e-6  # NCCL kernel launch per collective
        return 2 * spec.num_layers * (per_allreduce + launch_overhead)

    def pp_activation_time(self, spec: ModelSpec, tokens: int, link_gbps: float = 32.0) -> float:
        """Time to ship activations between pipeline stages for one pass."""
        if self.pp == 1 or tokens == 0:
            return 0.0
        bytes_per_hop = tokens * spec.hidden_size * spec.dtype_bytes
        per_hop = bytes_per_hop / (link_gbps * GB) + 20e-6
        return (self.pp - 1) * per_hop

    # -- memory ----------------------------------------------------------------

    def weight_bytes_per_gpu(self, spec: ModelSpec) -> int:
        """Model weight bytes resident on each GPU of the instance."""
        return int(spec.weight_bytes / self.num_gpus)

    def kv_bytes_per_token_per_gpu(self, spec: ModelSpec) -> float:
        """KV bytes per cached token on each GPU (KV shards over TP and PP)."""
        return spec.kv_bytes_per_token / self.num_gpus
