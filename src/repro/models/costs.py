"""FLOPs and IO-byte cost formulas (paper Table 1, generalised).

Table 1 gives per-layer costs for the OPT family (MHA, ``ffn_dim = 4H``):

===========  =====================  =====================
module       prefill FLOPs          decode FLOPs
===========  =====================  =====================
Attention    ``8NH^2 + 4N^2H``      ``8BH^2 + 4(sum L)H``
FFN          ``16NH^2``             ``16BH^2``
===========  =====================  =====================

with ``N`` prefill tokens, ``B`` decode batch size, ``sum L`` the summed
context lengths.  The functions below generalise to GQA (fewer KV-projection
FLOPs, smaller KV reads) and SwiGLU FFNs, and reduce exactly to Table 1 for
OPT specs — `tests/models/test_costs.py` asserts that reduction.

IO bytes follow the paper's analysis: decode streams every weight byte plus
the whole KV cache per iteration (``24H^2`` weights + ``4(sum L)H`` KV for
OPT per layer); prefill IO is dominated by weights and the freshly written
KV.
"""

from __future__ import annotations

from repro.models.spec import ModelSpec


# --------------------------------------------------------------------------
# Per-layer FLOPs
# --------------------------------------------------------------------------


def attn_flops_prefill(spec: ModelSpec, num_tokens: int) -> float:
    """Attention FLOPs for a prefill of ``num_tokens`` in one layer.

    Projections: ``2 * N * attn_params`` (one multiply-add per weight per
    token).  Score/value computation: ``4 N^2 H`` (QK^T and PV, each
    ``2 N^2 H``).  For MHA the projection term is ``8NH^2``, matching
    Table 1.
    """
    n, h = num_tokens, spec.hidden_size
    proj = 2 * n * spec.attn_params_per_layer
    score = 4 * n * n * h
    return float(proj + score)


def attn_flops_decode(spec: ModelSpec, batch_size: int, sum_context: int) -> float:
    """Attention FLOPs for one decode iteration of ``batch_size`` requests.

    Each request attends over its full context; ``sum_context`` is the sum of
    context lengths in the batch (the paper's ``sum L``).
    """
    b, h = batch_size, spec.hidden_size
    proj = 2 * b * spec.attn_params_per_layer
    score = 4 * sum_context * h
    return float(proj + score)


def ffn_flops_prefill(spec: ModelSpec, num_tokens: int) -> float:
    """FFN FLOPs for a prefill of ``num_tokens`` in one layer (``16NH^2`` for OPT)."""
    return float(2 * num_tokens * spec.ffn_params_per_layer)


def ffn_flops_decode(spec: ModelSpec, batch_size: int) -> float:
    """FFN FLOPs for one decode iteration (``16BH^2`` for OPT)."""
    return float(2 * batch_size * spec.ffn_params_per_layer)


def layer_flops_prefill(spec: ModelSpec, num_tokens: int) -> float:
    return attn_flops_prefill(spec, num_tokens) + ffn_flops_prefill(spec, num_tokens)


def layer_flops_decode(spec: ModelSpec, batch_size: int, sum_context: int) -> float:
    return attn_flops_decode(spec, batch_size, sum_context) + ffn_flops_decode(
        spec, batch_size
    )


# --------------------------------------------------------------------------
# Per-layer IO bytes
# --------------------------------------------------------------------------


def layer_io_bytes_prefill(spec: ModelSpec, num_tokens: int) -> float:
    """HBM traffic for a prefill of ``num_tokens`` in one layer.

    Weights stream once per pass; activations are read/written a handful of
    times; the new KV entries are written out.
    """
    weights = spec.weight_bytes_per_layer
    activations = 8 * num_tokens * spec.hidden_size * spec.dtype_bytes
    kv_write = num_tokens * spec.kv_bytes_per_token_per_layer
    return float(weights + activations + kv_write)


def layer_io_bytes_decode(spec: ModelSpec, batch_size: int, sum_context: int) -> float:
    """HBM traffic for one decode iteration in one layer.

    Dominated by streaming the layer weights and reading the whole KV cache
    (the paper's ``24H^2 + 4 (sum L) H`` for OPT in elements; we work in
    bytes).
    """
    weights = spec.weight_bytes_per_layer
    kv_read = sum_context * spec.kv_bytes_per_token_per_layer
    kv_write = batch_size * spec.kv_bytes_per_token_per_layer
    activations = 8 * batch_size * spec.hidden_size * spec.dtype_bytes
    return float(weights + kv_read + kv_write + activations)


# --------------------------------------------------------------------------
# Incremental prefill (chunked prefill over prior context)
# --------------------------------------------------------------------------


def layer_flops_prefill_extend(spec: ModelSpec, new_tokens: int, prior_context: int) -> float:
    """FLOPs to prefill ``new_tokens`` that attend over ``prior_context``
    already-cached tokens (one chunk of a chunked prefill)."""
    n, h = new_tokens, spec.hidden_size
    proj = 2 * n * spec.attn_params_per_layer
    score = 4 * n * (prior_context + n) * h
    ffn = 2 * n * spec.ffn_params_per_layer
    return float(proj + score + ffn)


def layer_io_bytes_prefill_extend(
    spec: ModelSpec, new_tokens: int, prior_context: int
) -> float:
    """HBM traffic for one chunk: weights stream again, the prior chunks' KV
    is re-read, and the new KV is written — the re-streaming that makes
    chunked prefill expensive."""
    weights = spec.weight_bytes_per_layer
    kv_read = prior_context * spec.kv_bytes_per_token_per_layer
    kv_write = new_tokens * spec.kv_bytes_per_token_per_layer
    activations = 8 * new_tokens * spec.hidden_size * spec.dtype_bytes
    return float(weights + kv_read + kv_write + activations)


def model_flops_prefill_extend(spec: ModelSpec, new_tokens: int, prior_context: int) -> float:
    lm_head = 2 * spec.hidden_size * spec.vocab_size
    return spec.num_layers * layer_flops_prefill_extend(spec, new_tokens, prior_context) + lm_head


def model_io_bytes_prefill_extend(
    spec: ModelSpec, new_tokens: int, prior_context: int
) -> float:
    lm_head = spec.vocab_size * spec.hidden_size * spec.dtype_bytes
    return (
        spec.num_layers * layer_io_bytes_prefill_extend(spec, new_tokens, prior_context)
        + lm_head
    )


# --------------------------------------------------------------------------
# Hybrid (fused prefill-chunk + decode-batch) pass decomposition
# --------------------------------------------------------------------------
#
# A hybrid pass fuses the *linear* operators (QKVO projections, FFN, LM
# head) across every token in the pass — weights stream once, compute
# covers prefill and decode tokens together — while the attention kernels
# still run per phase (the prefill chunk's score/value GEMMs, then the
# decode batch's paged-KV sweep).  The three groups below decompose the
# pass so the roofline can max() compute against IO within each group.
#
# Two identities tie the decomposition back to the isolated-phase
# formulas, asserted term-by-term in tests/perf/test_cost_consistency.py:
#
#   model_flops_hybrid(n, b, sL, P) ==
#       model_flops_decode(b, sL) + model_flops_prefill_extend(n, P)
#       (fusion saves no arithmetic)
#
#   model_io_bytes_hybrid(n, b, sL, P) ==
#       model_io_bytes_decode(b, sL) + model_io_bytes_prefill_extend(n, P)
#       - (num_layers * weight_bytes_per_layer + lm_head_bytes)
#       (fusion streams the weights and LM head exactly once, not twice)


def hybrid_flops_linear(spec: ModelSpec, prefill_tokens: int, batch_size: int) -> float:
    """Fused linear-operator FLOPs: projections + FFN over every token in
    the pass, plus LM-head matmuls for the chunk's last token and each
    decode request."""
    total = prefill_tokens + batch_size
    linear = 2 * total * spec.num_layers * spec.params_per_layer
    lm_head = 2 * (1 + batch_size) * spec.hidden_size * spec.vocab_size
    return float(linear + lm_head)


def hybrid_io_bytes_linear(spec: ModelSpec, prefill_tokens: int, batch_size: int) -> float:
    """Fused linear-operator HBM traffic: every weight byte (per-layer
    weights + LM head) streams once for the whole pass, and each of the
    pass's tokens pays the per-layer activation read/write traffic —
    ``8 * tokens * H * dtype`` bytes *per layer*, exactly as
    :func:`layer_io_bytes_prefill` / :func:`layer_io_bytes_decode` charge
    it for the isolated phases."""
    total = prefill_tokens + batch_size
    weights = spec.num_layers * spec.weight_bytes_per_layer
    lm_head = spec.vocab_size * spec.hidden_size * spec.dtype_bytes
    activations = spec.num_layers * 8 * total * spec.hidden_size * spec.dtype_bytes
    return float(weights + lm_head + activations)


def hybrid_flops_attn_prefill(spec: ModelSpec, new_tokens: int, prior_context: int) -> float:
    """Score/value FLOPs for the prefill chunk (``4·N·(P+N)·H`` per layer)."""
    return float(
        spec.num_layers * 4 * new_tokens * (prior_context + new_tokens) * spec.hidden_size
    )


def hybrid_io_bytes_attn_prefill(spec: ModelSpec, new_tokens: int, prior_context: int) -> float:
    """KV traffic for the prefill chunk: re-read the prior chunks' cache,
    write the new entries."""
    return float(
        spec.num_layers * (prior_context + new_tokens) * spec.kv_bytes_per_token_per_layer
    )


def hybrid_flops_attn_decode(spec: ModelSpec, sum_context: int) -> float:
    """Score/value FLOPs for the decode batch (``4·ΣL·H`` per layer)."""
    return float(spec.num_layers * 4 * sum_context * spec.hidden_size)


def hybrid_io_bytes_attn_decode(spec: ModelSpec, batch_size: int, sum_context: int) -> float:
    """KV traffic for the decode batch: sweep every cached token, write one
    new entry per request."""
    return float(
        spec.num_layers * (sum_context + batch_size) * spec.kv_bytes_per_token_per_layer
    )


def model_flops_hybrid(
    spec: ModelSpec,
    prefill_tokens: int,
    batch_size: int,
    sum_context: int,
    prior_context: int = 0,
) -> float:
    return (
        hybrid_flops_linear(spec, prefill_tokens, batch_size)
        + hybrid_flops_attn_prefill(spec, prefill_tokens, prior_context)
        + hybrid_flops_attn_decode(spec, sum_context)
    )


def model_io_bytes_hybrid(
    spec: ModelSpec,
    prefill_tokens: int,
    batch_size: int,
    sum_context: int,
    prior_context: int = 0,
) -> float:
    return (
        hybrid_io_bytes_linear(spec, prefill_tokens, batch_size)
        + hybrid_io_bytes_attn_prefill(spec, prefill_tokens, prior_context)
        + hybrid_io_bytes_attn_decode(spec, batch_size, sum_context)
    )


# --------------------------------------------------------------------------
# Whole-model aggregates
# --------------------------------------------------------------------------


def model_flops_prefill(spec: ModelSpec, num_tokens: int) -> float:
    """All-layer prefill FLOPs, plus the LM-head matmul for the last token."""
    lm_head = 2 * spec.hidden_size * spec.vocab_size
    return spec.num_layers * layer_flops_prefill(spec, num_tokens) + lm_head


def model_flops_decode(spec: ModelSpec, batch_size: int, sum_context: int) -> float:
    """All-layer decode FLOPs, plus per-request LM-head matmuls."""
    lm_head = 2 * batch_size * spec.hidden_size * spec.vocab_size
    return spec.num_layers * layer_flops_decode(spec, batch_size, sum_context) + lm_head


def model_io_bytes_prefill(spec: ModelSpec, num_tokens: int) -> float:
    lm_head = spec.vocab_size * spec.hidden_size * spec.dtype_bytes
    return spec.num_layers * layer_io_bytes_prefill(spec, num_tokens) + lm_head


def model_io_bytes_decode(spec: ModelSpec, batch_size: int, sum_context: int) -> float:
    lm_head = spec.vocab_size * spec.hidden_size * spec.dtype_bytes
    return spec.num_layers * layer_io_bytes_decode(spec, batch_size, sum_context) + lm_head
