"""Deterministic fault plans.

A :class:`FaultPlan` is plain data: a named, ordered set of
:class:`FaultEvent` injections.  Built-in plans place their events at
fractions of the workload's arrival horizon, with a small seed-derived
jitter so different seeds exercise different interleavings while the same
``(plan, seed, horizon)`` triple always reproduces the identical schedule —
the property the chaos-golden scenarios pin down.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable

import numpy as np


class FaultKind(enum.Enum):
    """What breaks."""

    INSTANCE_CRASH = "instance-crash"
    LINK_DEGRADE = "link-degrade"
    LINK_OUTAGE = "link-outage"
    STRAGGLER = "straggler"
    HOST_STALL = "host-stall"


@dataclass(frozen=True)
class FaultEvent:
    """One injection: ``kind`` hits ``target`` at ``time`` for ``duration``.

    ``target`` names an instance role (``"prefill"``/``"decode"``), an
    instance by name, or — for link faults — a link group (``"pd"`` for the
    prefill<->decode paths, ``"host:<role>"`` for an instance's swap path).
    ``magnitude`` is kind-specific: a compute-time multiplier for
    stragglers, a bandwidth-efficiency multiplier for degradation.
    """

    kind: FaultKind
    target: str
    time: float
    duration: float
    magnitude: float = 1.0
    extra_latency_s: float = 0.0

    @property
    def end(self) -> float:
        return self.time + self.duration


@dataclass(frozen=True)
class FaultPlan:
    """A named schedule of fault injections."""

    name: str
    events: tuple[FaultEvent, ...] = field(default_factory=tuple)
    seed: int = 0

    @property
    def horizon(self) -> float:
        """Time by which every injected fault has cleared."""
        return max((e.end for e in self.events), default=0.0)

    def describe(self) -> list[dict]:
        return [
            {
                "kind": e.kind.value,
                "target": e.target,
                "time": round(e.time, 6),
                "duration": round(e.duration, 6),
                "magnitude": e.magnitude,
            }
            for e in self.events
        ]


# -- built-in plans -----------------------------------------------------------

# Crashes shorter than the detector's reaction window would clear before any
# recovery logic runs; floor the downtime well above it.
MIN_DOWNTIME_S = 0.75
MIN_LINK_FAULT_S = 0.3


def _rng(name: str, seed: int) -> np.random.Generator:
    return np.random.default_rng([seed & 0x7FFFFFFF, *(ord(c) for c in name)])


def _jitter(rng: np.random.Generator) -> float:
    return float(rng.uniform(0.92, 1.08))


def _none(horizon: float, rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return ()


def _decode_crash(horizon: float, rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (
        FaultEvent(
            FaultKind.INSTANCE_CRASH,
            "decode",
            time=0.35 * horizon * _jitter(rng),
            duration=max(MIN_DOWNTIME_S, 0.25 * horizon),
        ),
    )


def _prefill_crash(horizon: float, rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (
        FaultEvent(
            FaultKind.INSTANCE_CRASH,
            "prefill",
            time=0.35 * horizon * _jitter(rng),
            duration=max(MIN_DOWNTIME_S, 0.2 * horizon),
        ),
    )


def _link_degrade(horizon: float, rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (
        FaultEvent(
            FaultKind.LINK_DEGRADE,
            "pd",
            time=0.3 * horizon * _jitter(rng),
            duration=max(MIN_LINK_FAULT_S, 0.3 * horizon),
            magnitude=0.25,
        ),
    )


def _link_outage(horizon: float, rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (
        FaultEvent(
            FaultKind.LINK_OUTAGE,
            "pd",
            time=0.4 * horizon * _jitter(rng),
            duration=max(MIN_LINK_FAULT_S, 0.12 * horizon),
        ),
    )


def _straggler(horizon: float, rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (
        FaultEvent(
            FaultKind.STRAGGLER,
            "decode",
            time=0.3 * horizon * _jitter(rng),
            duration=max(MIN_LINK_FAULT_S, 0.4 * horizon),
            magnitude=1.8,
        ),
    )


def _host_stall(horizon: float, rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (
        FaultEvent(
            FaultKind.HOST_STALL,
            "host:decode",
            time=0.3 * horizon * _jitter(rng),
            duration=max(MIN_LINK_FAULT_S, 0.3 * horizon),
            magnitude=0.4,
            extra_latency_s=0.002,
        ),
    )


def _mixed(horizon: float, rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (
        FaultEvent(
            FaultKind.STRAGGLER,
            "decode",
            time=0.15 * horizon * _jitter(rng),
            duration=max(MIN_LINK_FAULT_S, 0.2 * horizon),
            magnitude=1.5,
        ),
        FaultEvent(
            FaultKind.LINK_DEGRADE,
            "pd",
            time=0.4 * horizon * _jitter(rng),
            duration=max(MIN_LINK_FAULT_S, 0.15 * horizon),
            magnitude=0.3,
        ),
        FaultEvent(
            FaultKind.INSTANCE_CRASH,
            "decode",
            time=0.65 * horizon * _jitter(rng),
            duration=max(MIN_DOWNTIME_S, 0.2 * horizon),
        ),
    )


_BUILDERS: dict[str, Callable[[float, np.random.Generator], tuple[FaultEvent, ...]]] = {
    "none": _none,
    "decode-crash": _decode_crash,
    "prefill-crash": _prefill_crash,
    "link-degrade": _link_degrade,
    "link-outage": _link_outage,
    "straggler": _straggler,
    "host-stall": _host_stall,
    "mixed": _mixed,
}

FAULT_PLAN_NAMES: tuple[str, ...] = tuple(_BUILDERS)


def build_fault_plan(name: str, horizon: float, seed: int = 0) -> FaultPlan:
    """Instantiate a built-in plan against a workload arrival ``horizon``."""
    if name not in _BUILDERS:
        raise ValueError(f"unknown fault plan {name!r}; known: {FAULT_PLAN_NAMES}")
    if horizon < 0:
        raise ValueError("horizon must be non-negative")
    events = _BUILDERS[name](horizon, _rng(name, seed))
    return FaultPlan(name=name, events=tuple(sorted(events, key=lambda e: e.time)), seed=seed)


# -- fleet-scope plans ----------------------------------------------------------

# Fleet plans target members ("member:<name-or-index>"), whole nodes
# ("node:<k>" — a correlated crash of every pair touching the node), or the
# per-node RDMA NICs ("nic:<k>").  They are delivered by
# :class:`~repro.faults.injector.FleetFaultInjector` against a
# :class:`~repro.core.fleet.ServingFleet`, not a single system, so they
# live in their own registry.


def _member_crash(horizon: float, rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (
        FaultEvent(
            FaultKind.INSTANCE_CRASH,
            "member:1",
            time=0.35 * horizon * _jitter(rng),
            duration=max(MIN_DOWNTIME_S, 0.3 * horizon),
        ),
    )


def _node_crash(horizon: float, rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    # Correlated failure: every member with a GPU on node 1 dies at once.
    return (
        FaultEvent(
            FaultKind.INSTANCE_CRASH,
            "node:1",
            time=0.4 * horizon * _jitter(rng),
            duration=max(MIN_DOWNTIME_S, 0.3 * horizon),
        ),
    )


def _nic_outage(horizon: float, rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (
        FaultEvent(
            FaultKind.LINK_OUTAGE,
            "nic:0",
            time=0.4 * horizon * _jitter(rng),
            duration=max(MIN_LINK_FAULT_S, 0.12 * horizon),
        ),
    )


def _nic_degrade(horizon: float, rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (
        FaultEvent(
            FaultKind.LINK_DEGRADE,
            "nic:0",
            time=0.3 * horizon * _jitter(rng),
            duration=max(MIN_LINK_FAULT_S, 0.3 * horizon),
            magnitude=0.2,
        ),
    )


def _fleet_mixed(horizon: float, rng: np.random.Generator) -> tuple[FaultEvent, ...]:
    return (
        FaultEvent(
            FaultKind.INSTANCE_CRASH,
            "member:0",
            time=0.2 * horizon * _jitter(rng),
            duration=max(MIN_DOWNTIME_S, 0.2 * horizon),
        ),
        FaultEvent(
            FaultKind.LINK_DEGRADE,
            "nic:0",
            time=0.45 * horizon * _jitter(rng),
            duration=max(MIN_LINK_FAULT_S, 0.2 * horizon),
            magnitude=0.3,
        ),
        FaultEvent(
            FaultKind.INSTANCE_CRASH,
            "node:1",
            time=0.65 * horizon * _jitter(rng),
            duration=max(MIN_DOWNTIME_S, 0.2 * horizon),
        ),
    )


_FLEET_BUILDERS: dict[
    str, Callable[[float, np.random.Generator], tuple[FaultEvent, ...]]
] = {
    "none": _none,
    "member-crash": _member_crash,
    "node-crash": _node_crash,
    "nic-outage": _nic_outage,
    "nic-degrade": _nic_degrade,
    "fleet-mixed": _fleet_mixed,
}

FLEET_FAULT_PLAN_NAMES: tuple[str, ...] = tuple(_FLEET_BUILDERS)


def build_fleet_fault_plan(name: str, horizon: float, seed: int = 0) -> FaultPlan:
    """Instantiate a built-in fleet plan against an arrival ``horizon``."""
    if name not in _FLEET_BUILDERS:
        raise ValueError(
            f"unknown fleet fault plan {name!r}; known: {FLEET_FAULT_PLAN_NAMES}"
        )
    if horizon < 0:
        raise ValueError("horizon must be non-negative")
    events = _FLEET_BUILDERS[name](horizon, _rng(f"fleet-{name}", seed))
    return FaultPlan(name=name, events=tuple(sorted(events, key=lambda e: e.time)), seed=seed)
