"""Heartbeat-based failure detection.

The global scheduler cannot observe ``Instance.failed`` directly — a real
coordinator only sees missed heartbeats.  :class:`HeartbeatMonitor` ticks
at a fixed interval; after ``miss_threshold`` consecutive missed beats it
calls ``system.notice_failure(instance)``, which is when routing,
re-queueing, and shedding react.  The window between the crash and the
declaration is exactly the period in which requests can still be routed at
a dead instance — the latency the resilience metrics measure.

The monitor is bounded: it stops ticking after ``until`` so
``Simulator.run_until_idle`` still terminates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.fleet import ServingFleet
    from repro.serving.system import ServingSystem


class HeartbeatMonitor:
    """Declares instance failures from missed heartbeats."""

    def __init__(
        self,
        system: "ServingSystem",
        interval_s: float,
        miss_threshold: int,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        if miss_threshold < 1:
            raise ValueError("miss threshold must be >= 1")
        self.system = system
        self.interval_s = interval_s
        self.miss_threshold = miss_threshold
        self._last_beat: dict[str, float] = {}
        self._until = 0.0
        self._started = False

    def start(self, until: float) -> None:
        """Begin ticking; the monitor self-terminates after ``until``."""
        self._until = until
        if self._started:
            return
        self._started = True
        for instance in self.system.instances:
            self._last_beat[instance.name] = self.system.sim.now
        self.system.sim.schedule(self.interval_s, self._tick)

    def _tick(self) -> None:
        system = self.system
        now = system.sim.now
        if system.halted:
            return
        stale_after = self.miss_threshold * self.interval_s
        for instance in system.instances:
            if not instance.failed:
                self._last_beat[instance.name] = now
                continue
            last = self._last_beat.get(instance.name, now)
            if now - last >= stale_after - 1e-12:
                system.notice_failure(instance)
        if now + self.interval_s <= self._until + 1e-9:
            system.sim.schedule(self.interval_s, self._tick)


class FleetHeartbeatMonitor:
    """Declares fleet-member failures from missed member heartbeats.

    The cluster-scope twin of :class:`HeartbeatMonitor`: the router never
    reads a member's crash state directly — after ``miss_threshold``
    consecutive missed beats this monitor calls
    ``fleet.notice_member_failure(index)``, which is when the fleet
    re-routes the member's in-flight requests and the autoscaler promotes
    standby capacity.
    """

    def __init__(
        self,
        fleet: "ServingFleet",
        interval_s: float,
        miss_threshold: int,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("heartbeat interval must be positive")
        if miss_threshold < 1:
            raise ValueError("miss threshold must be >= 1")
        self.fleet = fleet
        self.interval_s = interval_s
        self.miss_threshold = miss_threshold
        self._last_beat: dict[int, float] = {}
        self._until = 0.0
        self._started = False

    def start(self, until: float) -> None:
        """Begin ticking; the monitor self-terminates after ``until``."""
        self._until = until
        if self._started:
            return
        self._started = True
        for index in range(len(self.fleet.members)):
            self._last_beat[index] = self.fleet.sim.now
        self.fleet.sim.schedule(self.interval_s, self._tick)

    def _tick(self) -> None:
        fleet = self.fleet
        now = fleet.sim.now
        stale_after = self.miss_threshold * self.interval_s
        for index, member in enumerate(fleet.members):
            if not member.halted:
                self._last_beat[index] = now
                continue
            if index in fleet.failed:
                continue
            last = self._last_beat.get(index, now)
            if now - last >= stale_after - 1e-12:
                fleet.notice_member_failure(index)
        if now + self.interval_s <= self._until + 1e-9:
            fleet.sim.schedule(self.interval_s, self._tick)
