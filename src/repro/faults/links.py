"""Link-outage windows consulted by the KV transfer engine.

An outage makes a link unusable for a time window: transfers launched into
the window retry with exponential backoff (see
:class:`~repro.kvcache.transfer.KVTransferEngine`).  Windows are installed
up front by the fault injector, so retry schedules are computable
synchronously and deterministically — ``job.finish`` stays valid for every
existing call site.
"""

from __future__ import annotations

from typing import Iterable, Protocol


class _Named(Protocol):  # pragma: no cover - typing aid
    name: str


class LinkFaultModel:
    """Per-link outage windows with point and interval queries."""

    def __init__(self) -> None:
        self._windows: dict[str, list[tuple[float, float]]] = {}

    def add_outage(self, link_name: str, start: float, end: float) -> None:
        if end <= start:
            raise ValueError("outage window must have positive duration")
        self._windows.setdefault(link_name, []).append((start, end))
        self._windows[link_name].sort()

    def has_outages(self) -> bool:
        return bool(self._windows)

    def is_down(self, time: float, links: Iterable[_Named]) -> bool:
        """True when any of ``links`` is inside an outage window at ``time``."""
        for link in links:
            for start, end in self._windows.get(link.name, ()):
                if start <= time < end:
                    return True
        return False

    def up_after(self, time: float, links: Iterable[_Named]) -> float:
        """Earliest ``t >= time`` at which every link in ``links`` is up."""
        links = list(links)
        t = time
        moved = True
        while moved:
            moved = False
            for link in links:
                for start, end in self._windows.get(link.name, ()):
                    if start <= t < end:
                        t = end
                        moved = True
        return t
