"""Delivers a :class:`~repro.faults.plan.FaultPlan` as simulator events.

Arming a plan schedules each injection with ``Simulator.call_at``, so fault
timing participates in ordinary event ordering and the run stays
deterministic and fingerprintable.  Crash events flow through
``Instance.fail()`` / ``Instance.recover()`` plus the system's crash
bookkeeping; link faults mutate the topology's link parameters (degradation)
or install outage windows in the transfer engine's
:class:`~repro.faults.links.LinkFaultModel` (loss).  Arming a non-empty plan
also starts the heartbeat monitor, bounded past the plan horizon so the
drain loop still terminates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.detection import FleetHeartbeatMonitor, HeartbeatMonitor
from repro.faults.links import LinkFaultModel
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.fleet import ServingFleet
    from repro.hardware.interconnect import Link
    from repro.serving.instance import Instance
    from repro.serving.system import ServingSystem


class FaultInjector:
    """Arms one fault plan against one serving system."""

    def __init__(self, system: "ServingSystem", plan: FaultPlan) -> None:
        self.system = system
        self.plan = plan
        self.monitor: HeartbeatMonitor | None = None
        # LINK_DEGRADE/HOST_STALL restore state, keyed per event.
        self._saved_links: dict[int, dict[str, tuple[float, float]]] = {}
        self._armed = False

    # -- arming ---------------------------------------------------------------

    def arm(self) -> None:
        """Schedule every injection and start failure detection."""
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        if not self.plan.events:
            return
        sim = self.system.sim
        for index, event in enumerate(self.plan.events):
            if event.kind is FaultKind.INSTANCE_CRASH:
                sim.call_at(event.time, self._crash, event)
                sim.call_at(event.end, self._recover, event)
            elif event.kind is FaultKind.STRAGGLER:
                sim.call_at(event.time, self._apply_straggler, event)
                sim.call_at(event.end, self._clear_straggler, event)
            elif event.kind in (FaultKind.LINK_DEGRADE, FaultKind.HOST_STALL):
                sim.call_at(event.time, self._apply_link_degrade, event, index)
                sim.call_at(event.end, self._clear_link_degrade, event, index)
            elif event.kind is FaultKind.LINK_OUTAGE:
                self._install_outage(event)
                sim.call_at(event.time, self._emit, "fault-inject", event)
                sim.call_at(event.end, self._emit, "fault-clear", event)
            else:  # pragma: no cover - exhaustive over FaultKind
                raise ValueError(f"unhandled fault kind {event.kind}")
        self._start_monitor()

    def _start_monitor(self) -> None:
        res = self.system.config.resilience
        self.monitor = HeartbeatMonitor(
            self.system, res.heartbeat_interval_s, res.heartbeat_miss_threshold
        )
        until = self.plan.horizon + res.detection_delay_s + 2 * res.heartbeat_interval_s
        self.monitor.start(until)

    # -- target resolution ------------------------------------------------------

    def _instance(self, target: str) -> "Instance":
        system = self.system
        for instance in system.instances:
            if instance.name == target:
                return instance
        if target == "prefill":
            return getattr(system, "prefill_instance", system.instances[0])
        if target == "decode":
            return getattr(system, "decode_instance", system.instances[-1])
        raise ValueError(
            f"fault target {target!r} matches no instance of {system.name!r} "
            f"(known: {[i.name for i in system.instances]})"
        )

    def _links(self, target: str) -> list["Link"]:
        system = self.system
        topology = system.topology
        if target.startswith("host:"):
            instance = self._instance(target.split(":", 1)[1])
            links = {}
            for gpu in instance.gpus:
                for link in topology.host_path(gpu).links:
                    links[link.name] = link
            return list(links.values())
        if target == "pd":
            instances = system.instances
            if len(instances) >= 2:
                src, dst = instances[0], instances[-1]
                links = {}
                for s in src.gpus:
                    for d in dst.gpus:
                        for link in topology.path(s, d).links:
                            links[link.name] = link
                return list(links.values())
            # Single-instance systems: the swap path is the only KV traffic.
            return self._links(f"host:{instances[0].name}")
        raise ValueError(f"unknown link fault target {target!r}")

    # -- crash / recover --------------------------------------------------------

    def _crash(self, event: FaultEvent) -> None:
        instance = self._instance(event.target)
        if instance.failed or self.system.halted:
            return
        self._emit("fault-inject", event)
        lost = instance.fail()
        self.system.register_crash(instance, lost)

    def _recover(self, event: FaultEvent) -> None:
        instance = self._instance(event.target)
        if not instance.failed or self.system.halted:
            return
        self._emit("fault-clear", event)
        instance.recover()

    # -- stragglers -------------------------------------------------------------

    def _apply_straggler(self, event: FaultEvent) -> None:
        instance = self._instance(event.target)
        instance.compute_slowdown = event.magnitude
        self.system.metrics.record_fault_event(
            "straggler", instance.name, self.system.sim.now
        )
        self._emit("fault-inject", event)

    def _clear_straggler(self, event: FaultEvent) -> None:
        instance = self._instance(event.target)
        instance.compute_slowdown = 1.0
        self._emit("fault-clear", event)

    # -- link degradation / host stalls ----------------------------------------

    def _apply_link_degrade(self, event: FaultEvent, index: int) -> None:
        saved: dict[str, tuple[float, float]] = {}
        for link in self._links(event.target):
            saved[link.name] = (link.efficiency, link.latency_s)
            link.efficiency *= event.magnitude
            link.latency_s += event.extra_latency_s
        self._saved_links[index] = saved
        self.system.metrics.record_fault_event(
            event.kind.value, event.target, self.system.sim.now
        )
        self._emit("fault-inject", event)

    def _clear_link_degrade(self, event: FaultEvent, index: int) -> None:
        saved = self._saved_links.pop(index, {})
        for link in self._links(event.target):
            if link.name in saved:
                link.efficiency, link.latency_s = saved[link.name]
        self._emit("fault-clear", event)

    # -- link outages -----------------------------------------------------------

    def _install_outage(self, event: FaultEvent) -> None:
        engine = self.system.transfers
        if engine.fault_model is None:
            engine.fault_model = LinkFaultModel()
        for link in self._links(event.target):
            engine.fault_model.add_outage(link.name, event.time, event.end)
        self.system.metrics.record_fault_event(event.kind.value, event.target, event.time)

    # -- trace -------------------------------------------------------------------

    def _emit(self, tag: str, event: FaultEvent) -> None:
        self.system.trace.emit(
            self.system.sim.now,
            "fault-injector",
            tag,
            kind=event.kind.value,
            target=event.target,
            magnitude=event.magnitude,
        )


class FleetFaultInjector:
    """Arms one fault plan against a :class:`~repro.core.fleet.ServingFleet`.

    Fleet plans speak cluster-scope targets:

    * ``member:<name-or-index>`` — crash/restart one fleet member (both of
      its instances at once) or make it straggle;
    * ``node:<k>`` — correlated crash of every member with a GPU on node
      ``k``;
    * ``nic:<k>`` — degrade or black out node ``k``'s RDMA NIC, which every
      cross-node KV hand-off and migration rides.

    Arming a non-empty plan also starts the fleet heartbeat monitor, so a
    crashed member's requests are re-routed only after detection — exactly
    the knowledge/truth split the single-system injector enforces.
    """

    def __init__(self, fleet: "ServingFleet", plan: FaultPlan) -> None:
        self.fleet = fleet
        self.plan = plan
        self.monitor: FleetHeartbeatMonitor | None = None
        self._saved_links: dict[int, dict[str, tuple[float, float]]] = {}
        self._armed = False

    # -- arming ---------------------------------------------------------------

    def arm(self) -> None:
        """Schedule every injection and start fleet failure detection."""
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        if not self.plan.events:
            return
        sim = self.fleet.sim
        for index, event in enumerate(self.plan.events):
            if event.kind is FaultKind.INSTANCE_CRASH:
                sim.call_at(event.time, self._crash, event)
                sim.call_at(event.end, self._restart, event)
            elif event.kind is FaultKind.STRAGGLER:
                sim.call_at(event.time, self._apply_straggler, event)
                sim.call_at(event.end, self._clear_straggler, event)
            elif event.kind in (FaultKind.LINK_DEGRADE, FaultKind.HOST_STALL):
                sim.call_at(event.time, self._apply_link_degrade, event, index)
                sim.call_at(event.end, self._clear_link_degrade, event, index)
            elif event.kind is FaultKind.LINK_OUTAGE:
                self._install_outage(event)
                sim.call_at(event.time, self._emit, "fault-inject", event)
                sim.call_at(event.end, self._emit, "fault-clear", event)
            else:  # pragma: no cover - exhaustive over FaultKind
                raise ValueError(f"unhandled fault kind {event.kind}")
        self._start_monitor()

    def _start_monitor(self) -> None:
        res = self.fleet.members[0].config.resilience
        self.monitor = FleetHeartbeatMonitor(
            self.fleet, res.heartbeat_interval_s, res.heartbeat_miss_threshold
        )
        until = self.plan.horizon + res.detection_delay_s + 2 * res.heartbeat_interval_s
        self.monitor.start(until)

    # -- target resolution ------------------------------------------------------

    def _members(self, target: str) -> list[int]:
        fleet = self.fleet
        if target.startswith("member:"):
            key = target.split(":", 1)[1]
            for index, member in enumerate(fleet.members):
                if member.name == key:
                    return [index]
            if key.isdigit() and int(key) < len(fleet.members):
                return [int(key)]
            raise ValueError(
                f"fault target {target!r} matches no fleet member "
                f"(known: {[m.name for m in fleet.members]})"
            )
        if target.startswith("node:"):
            node = int(target.split(":", 1)[1])
            members = fleet.members_on_node(node)
            if not members:
                raise ValueError(f"no fleet member has a GPU on node {node}")
            return members
        raise ValueError(f"unknown fleet fault target {target!r}")

    def _nic_links(self, target: str) -> list["Link"]:
        if not target.startswith("nic:"):
            raise ValueError(
                f"fleet link faults target NICs ('nic:<node>'); got {target!r}"
            )
        cluster = self.fleet.cluster
        if cluster is None:
            raise ValueError("nic fault targets need a ClusterTopology fleet")
        return [cluster.nic(int(target.split(":", 1)[1]))]

    # -- crash / restart --------------------------------------------------------

    def _crash(self, event: FaultEvent) -> None:
        for index in self._members(event.target):
            if index in self.fleet.crashed:
                continue
            self._emit("fault-inject", event, member=self.fleet.members[index].name)
            self.fleet.crash_member(index)

    def _restart(self, event: FaultEvent) -> None:
        for index in self._members(event.target):
            if index not in self.fleet.crashed:
                continue
            self._emit("fault-clear", event, member=self.fleet.members[index].name)
            self.fleet.restart_member(index)

    # -- stragglers -------------------------------------------------------------

    def _apply_straggler(self, event: FaultEvent) -> None:
        for index in self._members(event.target):
            member = self.fleet.members[index]
            for instance in member.instances:
                instance.compute_slowdown = event.magnitude
            self.fleet.metrics.record_fault_event(
                "straggler", member.name, self.fleet.sim.now
            )
        self._emit("fault-inject", event)

    def _clear_straggler(self, event: FaultEvent) -> None:
        for index in self._members(event.target):
            for instance in self.fleet.members[index].instances:
                instance.compute_slowdown = 1.0
        self._emit("fault-clear", event)

    # -- NIC degradation --------------------------------------------------------

    def _apply_link_degrade(self, event: FaultEvent, index: int) -> None:
        saved: dict[str, tuple[float, float]] = {}
        for link in self._nic_links(event.target):
            saved[link.name] = (link.efficiency, link.latency_s)
            link.efficiency *= event.magnitude
            link.latency_s += event.extra_latency_s
        self._saved_links[index] = saved
        self.fleet.metrics.record_fault_event(
            event.kind.value, event.target, self.fleet.sim.now
        )
        self._emit("fault-inject", event)

    def _clear_link_degrade(self, event: FaultEvent, index: int) -> None:
        saved = self._saved_links.pop(index, {})
        for link in self._nic_links(event.target):
            if link.name in saved:
                link.efficiency, link.latency_s = saved[link.name]
        self._emit("fault-clear", event)

    # -- NIC outages ------------------------------------------------------------

    def _install_outage(self, event: FaultEvent) -> None:
        links = self._nic_links(event.target)
        # Every member owns its own transfer engine over the shared links;
        # the outage window must be visible to all of them.
        for member in self.fleet.members:
            engine = member.transfers
            if engine.fault_model is None:
                engine.fault_model = LinkFaultModel()
            for link in links:
                engine.fault_model.add_outage(link.name, event.time, event.end)
        self.fleet.metrics.record_fault_event(event.kind.value, event.target, event.time)

    # -- trace -------------------------------------------------------------------

    def _emit(self, tag: str, event: FaultEvent, **extra) -> None:
        self.fleet.trace.emit(
            self.fleet.sim.now,
            "fleet-fault-injector",
            tag,
            kind=event.kind.value,
            target=event.target,
            magnitude=event.magnitude,
            **extra,
        )
