"""Fault injection and resilience: chaos scheduling for the simulator.

The subsystem has three parts:

* :mod:`repro.faults.plan` — deterministic, seed-driven :class:`FaultPlan`
  schedules (instance crashes, link degradation/outage, stragglers, host
  stalls) expressed as plain data;
* :mod:`repro.faults.injector` — :class:`FaultInjector` delivers a plan as
  ordinary simulator events (so replay and run fingerprints still hold) and
  starts the heartbeat failure detector;
* :mod:`repro.faults.detection` / :mod:`repro.faults.links` — the heartbeat
  monitor and the link-outage window model the transfer engine consults for
  retry-with-backoff.

Recovery policy itself lives in the serving systems (see
``docs/resilience.md``); this package only produces the faults and the
knowledge of them.
"""

from repro.faults.config import ResilienceConfig, should_shed_tier, tier_inflight_limit
from repro.faults.detection import FleetHeartbeatMonitor, HeartbeatMonitor
from repro.faults.injector import FaultInjector, FleetFaultInjector
from repro.faults.links import LinkFaultModel
from repro.faults.plan import (
    FAULT_PLAN_NAMES,
    FLEET_FAULT_PLAN_NAMES,
    FaultEvent,
    FaultKind,
    FaultPlan,
    build_fault_plan,
    build_fleet_fault_plan,
)

__all__ = [
    "FAULT_PLAN_NAMES",
    "FLEET_FAULT_PLAN_NAMES",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FleetFaultInjector",
    "FleetHeartbeatMonitor",
    "HeartbeatMonitor",
    "LinkFaultModel",
    "ResilienceConfig",
    "build_fault_plan",
    "build_fleet_fault_plan",
    "should_shed_tier",
    "tier_inflight_limit",
]
