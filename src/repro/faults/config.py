"""Resilience tunables shared by every serving system.

Kept dependency-free so ``serving.system`` can embed a
:class:`ResilienceConfig` in :class:`~repro.serving.system.SystemConfig`
without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResilienceConfig:
    """Detection, retry, and degraded-mode knobs.

    Defaults are behaviour-neutral in a fault-free run: the heartbeat
    monitor only starts when a fault plan is armed, retries only trigger
    when a link-outage window is installed, and shedding only happens while
    an instance is known-failed.
    """

    # Failure detection: an instance is declared failed after
    # ``heartbeat_miss_threshold`` consecutive missed heartbeats.
    heartbeat_interval_s: float = 0.05
    heartbeat_miss_threshold: int = 3

    # Retry-with-backoff for KV transfers launched into a link outage.
    transfer_retry_backoff_s: float = 0.02
    transfer_retry_multiplier: float = 2.0
    transfer_max_retries: int = 8

    # Degraded mode: while any instance is known-failed, shed new arrivals
    # once the in-flight population exceeds this limit.
    shed_enabled: bool = True
    degraded_inflight_limit: int = 96

    # Priority-aware shedding: each tier's effective in-flight cap is
    # ``degraded_inflight_limit * fraction``.  The tuple is ordered highest
    # priority first and its fractions must be non-increasing, so a tier is
    # only ever shed after every lower-priority tier is already being shed
    # (best-effort dropped first, interactive last).  ``standard`` keeps
    # fraction 1.0 — the exact flat cap — so tier-free runs are unchanged.
    tier_admission_fractions: tuple[tuple[str, float], ...] = (
        ("interactive", 1.5),
        ("standard", 1.0),
        ("best_effort", 0.5),
    )

    def __post_init__(self) -> None:
        previous = None
        for tier, fraction in self.tier_admission_fractions:
            if fraction <= 0:
                raise ValueError(f"tier {tier!r} admission fraction must be positive")
            if previous is not None and fraction > previous:
                raise ValueError(
                    "tier_admission_fractions must be non-increasing in priority "
                    f"order; {tier!r} got {fraction} after {previous}"
                )
            previous = fraction

    def tier_fraction(self, tier: str) -> float:
        """Admission headroom of ``tier`` (1.0 for unknown/absent tiers)."""
        for name, fraction in self.tier_admission_fractions:
            if name == tier:
                return fraction
        return 1.0

    def tier_inflight_limit(self, tier: str) -> int:
        """Effective degraded-mode in-flight cap for one tier."""
        return tier_inflight_limit(
            self.degraded_inflight_limit, tier, self.tier_admission_fractions
        )

    @property
    def detection_delay_s(self) -> float:
        """Worst-case time from crash to declaration by the monitor."""
        return self.heartbeat_interval_s * (self.heartbeat_miss_threshold + 1)


def tier_inflight_limit(
    limit: int, tier: str, fractions: tuple[tuple[str, float], ...]
) -> int:
    """Pure tier-cap policy: ``floor(limit * fraction)`` for ``tier``.

    Kept free of any object state so property-based tests can drive it
    directly: with non-increasing fractions (enforced by
    :class:`ResilienceConfig`), a tighter ``limit`` can never shed a
    higher-priority tier while a lower-priority tier is still admitted.
    """
    for name, fraction in fractions:
        if name == tier:
            return int(limit * fraction)
    return int(limit)


def should_shed_tier(
    in_flight: int, limit: int, tier: str, fractions: tuple[tuple[str, float], ...]
) -> bool:
    """Degraded-mode admission decision for one arriving request."""
    return in_flight > tier_inflight_limit(limit, tier, fractions)
