"""Resilience tunables shared by every serving system.

Kept dependency-free so ``serving.system`` can embed a
:class:`ResilienceConfig` in :class:`~repro.serving.system.SystemConfig`
without an import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ResilienceConfig:
    """Detection, retry, and degraded-mode knobs.

    Defaults are behaviour-neutral in a fault-free run: the heartbeat
    monitor only starts when a fault plan is armed, retries only trigger
    when a link-outage window is installed, and shedding only happens while
    an instance is known-failed.
    """

    # Failure detection: an instance is declared failed after
    # ``heartbeat_miss_threshold`` consecutive missed heartbeats.
    heartbeat_interval_s: float = 0.05
    heartbeat_miss_threshold: int = 3

    # Retry-with-backoff for KV transfers launched into a link outage.
    transfer_retry_backoff_s: float = 0.02
    transfer_retry_multiplier: float = 2.0
    transfer_max_retries: int = 8

    # Degraded mode: while any instance is known-failed, shed new arrivals
    # once the in-flight population exceeds this limit.
    shed_enabled: bool = True
    degraded_inflight_limit: int = 96

    @property
    def detection_delay_s(self) -> float:
        """Worst-case time from crash to declaration by the monitor."""
        return self.heartbeat_interval_s * (self.heartbeat_miss_threshold + 1)
