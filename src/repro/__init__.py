"""WindServe reproduction.

A discrete-event-simulated reproduction of *WindServe: Efficient
Phase-Disaggregated LLM Serving with Stream-based Dynamic Scheduling*
(ISCA 2025), including the DistServe and vLLM baselines it compares
against, the A800 testbed hardware model, and the full experiment harness.

Quickstart::

    from repro import ExperimentSpec, run_experiment

    spec = ExperimentSpec(
        system="windserve", model="opt-13b", dataset="sharegpt",
        rate_per_gpu=4.0, num_requests=500,
    )
    result = run_experiment(spec)
    print(result.summary)
"""

from repro.core import WindServeConfig, WindServeSystem
from repro.baselines import DistServeSystem, VLLMSystem
from repro.harness import (
    ExperimentResult,
    ExperimentSpec,
    build_system,
    derive_slo,
    format_table,
    paper_slo,
    run_experiment,
    search_placement,
    sweep_rates,
)
from repro.hardware import A800_80GB, GPUSpec, NodeTopology
from repro.models import MODEL_REGISTRY, ModelSpec, ParallelConfig, get_model
from repro.serving import SLO, Request, SystemConfig
from repro.workloads import DATASET_REGISTRY, get_dataset, generate_trace

__version__ = "0.1.0"

__all__ = [
    "WindServeSystem",
    "WindServeConfig",
    "DistServeSystem",
    "VLLMSystem",
    "ExperimentSpec",
    "ExperimentResult",
    "run_experiment",
    "sweep_rates",
    "build_system",
    "search_placement",
    "derive_slo",
    "paper_slo",
    "format_table",
    "A800_80GB",
    "GPUSpec",
    "NodeTopology",
    "ModelSpec",
    "ParallelConfig",
    "MODEL_REGISTRY",
    "get_model",
    "SLO",
    "Request",
    "SystemConfig",
    "DATASET_REGISTRY",
    "get_dataset",
    "generate_trace",
    "__version__",
]
