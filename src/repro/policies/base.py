"""Policy registries and interfaces for the scheduling-policy layer.

WindServe's contribution is *dynamic scheduling policy* (paper §3–§5), but
policy logic used to be smeared across the stack: the fleet router was a
string-dispatched if/elif chain, degraded-mode admission lived inside
``ServingSystem``, and preemption victim selection was welded into
``Instance``.  This package pulls those decision points behind three small
interfaces so a policy change is a new class, not an edit to four
entangled files:

* :class:`RoutingPolicy` — fleet scope: pick a member for each request and
  observe completions/failures;
* :class:`AdmissionPolicy` — system scope: admit, shed, or displace under
  degraded mode;
* :class:`PreemptionPolicy` — instance scope: choose victims when memory
  pressure or higher-priority work needs a running request evicted.

Each interface has a :class:`PolicyRegistry`; implementations register by
name and are looked up by the engine at construction time.  The *default*
implementations are verbatim extractions of the pre-refactor behaviour, so
default-policy runs are byte-identical to the recorded goldens.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.core.fleet import ServingFleet
    from repro.serving.instance import Instance
    from repro.serving.request import Request
    from repro.serving.system import ServingSystem


class PolicyRegistry:
    """Name -> factory registry for one policy kind.

    Registration order is preserved: ``names()`` feeds CLI ``choices`` and
    the legacy ``ROUTER_POLICIES`` tuple, so defaults-first ordering keeps
    help text and error messages stable.
    """

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._factories: dict[str, Callable[..., Any]] = {}

    def register(self, name: str) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
        def decorate(factory: Callable[..., Any]) -> Callable[..., Any]:
            if name in self._factories:
                raise ValueError(f"{self.kind} policy {name!r} registered twice")
            factory.policy_name = name  # type: ignore[attr-defined]
            self._factories[name] = factory
            return factory

        return decorate

    def create(self, name: str, **kwargs: Any) -> Any:
        if name not in self._factories:
            raise ValueError(
                f"unknown policy {name!r} for {self.kind}; known: {self.names()}"
            )
        return self._factories[name](**kwargs)

    def names(self) -> tuple[str, ...]:
        return tuple(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories


# -- interfaces ----------------------------------------------------------------


class RoutingPolicy:
    """Fleet-level routing: pick a member index for each arriving request."""

    name = "base"

    def select(
        self, fleet: "ServingFleet", candidates: Sequence[int], request: "Request"
    ) -> int:
        """Choose one of ``candidates`` (eligible member indices) for
        ``request``.  Must be deterministic given the fleet state."""
        raise NotImplementedError

    def observe_completion(
        self, fleet: "ServingFleet", index: int, request: "Request"
    ) -> None:
        """Hook: ``request`` finished on member ``index``."""

    def observe_failure(self, fleet: "ServingFleet", index: int) -> None:
        """Hook: member ``index`` was declared dead by detection."""


class AdmissionPolicy:
    """System-level degraded-mode admission control.

    ``admit`` returns True when the request should proceed to
    ``system.submit``; returning False means the request is shed (the
    caller records the shed).  A policy may free capacity first — e.g. by
    shedding a queued lower-tier victim or preempting a running one — and
    then admit.
    """

    name = "base"

    def admit(self, system: "ServingSystem", request: "Request") -> bool:
        raise NotImplementedError


class PreemptionPolicy:
    """Instance-level victim selection.

    ``pick_swap_victim`` orders the instance's eligible running requests
    (``instance.swap_candidates``) when KV pressure needs one evicted;
    ``pick_displacement_victim`` picks a running strictly-lower-priority
    request an admission policy may preempt in favour of higher-tier work.
    """

    name = "base"

    def pick_swap_victim(
        self, instance: "Instance", exclude: Optional["Request"] = None
    ) -> Optional["Request"]:
        raise NotImplementedError

    def pick_displacement_victim(
        self, instance: "Instance", rank: int
    ) -> Optional["Request"]:
        """Running strictly-lower-priority victim (tier rank > ``rank``).

        Mirrors the queued-displacement tie-break: lowest tier first, then
        latest arrival, then highest request id — so under pressure the
        preempted population concentrates in the lowest tiers.
        """
        from repro.serving.request import TIER_PRIORITY, Phase

        best: Optional["Request"] = None
        for request in instance.running_requests:
            if request.finished or request.phase is not Phase.DECODING:
                continue
            if TIER_PRIORITY[request.tier] <= rank:
                continue
            if request.extra.get("migrating"):
                continue
            if best is None or (
                TIER_PRIORITY[request.tier],
                request.arrival_time,
                request.request_id,
            ) > (TIER_PRIORITY[best.tier], best.arrival_time, best.request_id):
                best = request
        return best


# -- fingerprint identity ------------------------------------------------------

#: Policy choices that reproduce the pre-policy-layer behaviour.  Runs using
#: only these baselines carry *no* policy component in their fingerprint, so
#: every golden recorded before the layer existed stays byte-identical.
FINGERPRINT_BASELINES = {
    "router": "round-robin",
    "admission": "nested-caps",
    "preemption": "latest-arrived",
}


def policy_identity(**policies: Optional[str]) -> tuple[tuple[str, str], ...]:
    """Sorted (kind, name) pairs for the non-baseline policy choices.

    Baseline (and ``None``) entries are dropped: policy choice is part of a
    run's identity only when it deviates from the recorded default.
    """
    return tuple(
        sorted(
            (kind, name)
            for kind, name in policies.items()
            if name is not None and name != FINGERPRINT_BASELINES.get(kind)
        )
    )
