"""Unified scheduling-policy layer: routing, admission, preemption.

See :mod:`repro.policies.base` for the interfaces and
``docs/policies.md`` for how to add a policy.
"""

from repro.policies.base import (
    FINGERPRINT_BASELINES,
    AdmissionPolicy,
    PolicyRegistry,
    PreemptionPolicy,
    RoutingPolicy,
    policy_identity,
)
from repro.policies.admission import ADMISSION_POLICIES
from repro.policies.fairshare import (
    FairShareClock,
    FairShareConfig,
    FairShareQueue,
    TenantRateLimiter,
    TokenBucket,
)
from repro.policies.preemption import PREEMPTION_POLICIES
from repro.policies.routing import ROUTING_POLICIES

__all__ = [
    "ADMISSION_POLICIES",
    "FINGERPRINT_BASELINES",
    "PREEMPTION_POLICIES",
    "ROUTING_POLICIES",
    "AdmissionPolicy",
    "FairShareClock",
    "FairShareConfig",
    "FairShareQueue",
    "PolicyRegistry",
    "PreemptionPolicy",
    "RoutingPolicy",
    "TenantRateLimiter",
    "TokenBucket",
    "policy_identity",
]
