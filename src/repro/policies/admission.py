"""Degraded-mode admission policies.

``nested-caps`` is the verbatim extraction of the pre-policy-layer
``ServingSystem._should_shed`` / ``_displace_lower_tier`` pair: priority-
aware admission with nested tier caps, displacing *queued* lower-tier work
before dropping a higher-tier arrival.  Default-policy runs reproduce the
recorded goldens byte-for-byte.

``preemptive`` (ROADMAP: preemptive displacement) goes one step further:
when no queued victim exists, it swaps out a *running* strictly-lower-tier
decode (via the instance's existing CPU-swap machinery, the same path
``core/rescheduling.py`` migrations reuse) so an interactive request that
would otherwise shed can be admitted.  The preempted request is not lost —
it sits in the instance's ``swapped`` pool and resumes through the normal
swap-in path, so request conservation holds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.policies.base import AdmissionPolicy, PolicyRegistry
from repro.serving.request import TIER_PRIORITY, Phase, Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.instance import Instance
    from repro.serving.system import ServingSystem

ADMISSION_POLICIES = PolicyRegistry("admission")


@ADMISSION_POLICIES.register("nested-caps")
class NestedCapsAdmission(AdmissionPolicy):
    """Priority-aware degraded-mode admission with nested tier caps."""

    name = "nested-caps"

    def admit(self, system: "ServingSystem", request: Request) -> bool:
        if not self.should_shed(system, request):
            return True
        # A higher-tier arrival over its cap displaces a queued lower-tier
        # request rather than being dropped itself.
        if self.displace_queued(system, request) is not None:
            return True
        return False

    def should_shed(self, system: "ServingSystem", request: Request) -> bool:
        """Each tier sheds at its own effective cap (``degraded_inflight_limit``
        scaled by the tier's admission fraction), and — crucially — a tier's
        in-flight count includes only its own tier and higher-priority tiers.
        Lower-tier backlog therefore cannot crowd out interactive traffic:
        best-effort counts everything (shed first), interactive counts only
        itself (shed last).  In a tier-free run every request is standard, so
        the nested count equals the total and the ``standard`` fraction of
        1.0 reproduces the flat cap exactly."""
        res = system.config.resilience
        if not res.shed_enabled or not system.known_failed:
            return False
        rank = TIER_PRIORITY[request.tier]
        in_flight = sum(
            count
            for tier, count in system.in_flight_by_tier().items()
            if TIER_PRIORITY.get(tier, 0) <= rank
        )
        return in_flight > res.tier_inflight_limit(request.tier)

    def displace_queued(
        self, system: "ServingSystem", request: Request
    ) -> Optional[Request]:
        """Evict a queued strictly-lower-priority request in favour of
        ``request``.

        Scans every live instance's waiting queue for requests that have not
        started any work, and picks the lowest-priority one (latest arrival
        breaking ties) so that under a deep degraded-mode backlog the shed
        population concentrates in the lowest tiers regardless of arrival
        order.  With a uniform tier population there is never a strictly
        lower tier queued, so tier-free runs are untouched."""
        rank = TIER_PRIORITY[request.tier]
        victim: Optional[Request] = None
        victim_host: Optional["Instance"] = None
        for instance in system.instances:
            if instance.failed:
                continue
            for queued in instance.waiting:
                if TIER_PRIORITY[queued.tier] <= rank:
                    continue
                if (
                    queued.phase is not Phase.WAITING_PREFILL
                    or queued.prefilled_tokens
                    or queued.output_generated
                ):
                    continue
                if victim is None or (
                    TIER_PRIORITY[queued.tier],
                    queued.arrival_time,
                    queued.request_id,
                ) > (
                    TIER_PRIORITY[victim.tier],
                    victim.arrival_time,
                    victim.request_id,
                ):
                    victim = queued
                    victim_host = instance
        if victim is None:
            return None
        victim_host.waiting.remove(victim)
        system.metrics.bump("shed_displaced")
        system._shed(victim)
        return victim


@ADMISSION_POLICIES.register("preemptive")
class PreemptiveAdmission(NestedCapsAdmission):
    """Nested caps, plus preemption of *running* lower-tier decodes.

    When a higher-tier arrival is over its cap and no untouched queued
    victim exists, swap out a running strictly-lower-tier decode instead of
    shedding the arrival.  The victim keeps its KV (CPU swap), stays
    in-flight, and resumes via the instance's normal swap-in path — so
    preemption conserves requests: preempted work is re-queued or
    completed, never lost.
    """

    name = "preemptive"

    def admit(self, system: "ServingSystem", request: Request) -> bool:
        if not self.should_shed(system, request):
            return True
        if self.displace_queued(system, request) is not None:
            return True
        if self.displace_running(system, request):
            return True
        return False

    def displace_running(self, system: "ServingSystem", request: Request) -> bool:
        """Swap out the lowest-priority running decode below ``request``'s tier.

        Returns True when a victim was preempted (the arrival may then be
        admitted).  Victims are chosen by each instance's preemption policy
        and preempted through ``Instance._swap_out`` — the same CPU-swap
        machinery memory-pressure preemption and stall-free migration use.
        """
        from repro.kvcache.blocks import BlockLocation

        rank = TIER_PRIORITY[request.tier]
        victim: Optional[Request] = None
        victim_host: Optional["Instance"] = None
        for instance in system.instances:
            if instance.failed or instance.halted:
                continue
            candidate = instance.preemption.pick_displacement_victim(instance, rank)
            if candidate is None:
                continue
            if victim is None or (
                TIER_PRIORITY[candidate.tier],
                candidate.arrival_time,
                candidate.request_id,
            ) > (TIER_PRIORITY[victim.tier], victim.arrival_time, victim.request_id):
                victim = candidate
                victim_host = instance
        if victim is None or victim_host is None:
            return False
        kv = victim_host.kv
        if not kv.has(victim.request_id):
            return False
        alloc = kv.get(victim.request_id)
        if alloc.location is not BlockLocation.GPU or alloc.blocks > kv.free_cpu_blocks:
            return False  # no room to swap the victim's KV to CPU DRAM
        victim_host._swap_out(victim)
        system.metrics.bump("preempt_displaced")
        system.metrics.bump(f"preempt_displaced[{victim.tier}]")
        system.trace.emit(
            system.sim.now,
            "resilience",
            "preempt-displace",
            request_id=victim.request_id,
            tier=victim.tier,
        )
        return True
