"""Fleet routing policies (paper §7 load balancing, plus tier-awareness).

The first three are verbatim extractions of the pre-policy-layer router:

* ``round-robin`` — classic stateless spreading;
* ``least-loaded`` — join the member with the fewest unresolved requests;
* ``predicted-ttft`` — ask each member what the new request's TTFT would
  be and join the cheapest.  WindServe members answer via their
  Coordinator's Profiler; other member types get an analytic
  estimated-seconds score (queued prefill tokens + the new prompt through
  the member's own latency model) so mixed fleets compare commensurable
  numbers — previously non-WindServe members returned a raw request count
  against the WindServe members' seconds.

``tier-aware`` is new (ROADMAP item): interactive and standard traffic
joins the member with the smallest *tier-weighted* load, while best-effort
requests are deliberately routed to the most-loaded member — they absorb
the stragglers, keeping the lightly loaded members fast for interactive
work.  By construction an interactive request is never assigned to a
strictly more-loaded member than a simultaneous best-effort one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.policies.base import PolicyRegistry, RoutingPolicy
from repro.serving.request import Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.fleet import ServingFleet
    from repro.serving.system import ServingSystem

ROUTING_POLICIES = PolicyRegistry("routing")


def member_load(member: "ServingSystem") -> int:
    """Requests arrived at ``member`` and still unresolved (not done, not shed)."""
    return member.submitted - len(member.metrics.completed) - len(member.metrics.shed)


@ROUTING_POLICIES.register("round-robin")
class RoundRobinRouting(RoutingPolicy):
    """Stateless spreading over the eligible members, in arrival order."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(
        self, fleet: "ServingFleet", candidates: Sequence[int], request: Request
    ) -> int:
        index = candidates[self._next % len(candidates)]
        self._next += 1
        return index


@ROUTING_POLICIES.register("least-loaded")
class LeastLoadedRouting(RoutingPolicy):
    """Join the member with the fewest queued+running requests."""

    name = "least-loaded"

    def select(
        self, fleet: "ServingFleet", candidates: Sequence[int], request: Request
    ) -> int:
        return min(candidates, key=lambda i: member_load(fleet.members[i]))


@ROUTING_POLICIES.register("predicted-ttft")
class PredictedTTFTRouting(RoutingPolicy):
    """Join the member predicting the cheapest TTFT for this request."""

    name = "predicted-ttft"

    def select(
        self, fleet: "ServingFleet", candidates: Sequence[int], request: Request
    ) -> int:
        return min(
            candidates, key=lambda i: self.predicted_ttft(fleet.members[i], request)
        )

    @staticmethod
    def predicted_ttft(member: "ServingSystem", request: Request) -> float:
        """Estimated seconds until the request's first token on ``member``.

        WindServe members answer through the Global Scheduler's Profiler;
        any other member type is scored analytically on the same scale —
        the queued prefill backlog plus the new prompt through the member's
        own prefill latency model, after the busiest lane's current batch
        drains.  (The old fallback returned a raw request *count*, which is
        incommensurable with seconds and mis-ranked mixed fleets.)

        Because every score flows through the member's *own*
        ``LatencyModel``, the ranking stays correct on heterogeneous
        fleets: an H100 member with a deeper queue can still predict a
        cheaper TTFT than an idle-ish A800, and it will win the request.
        """
        from repro.core.windserve import WindServeSystem

        if isinstance(member, WindServeSystem):
            return member.coordinator.predict_ttft(request)
        prefill_capable = (
            [member.prefill_instance]
            if hasattr(member, "prefill_instance")
            else member.instances
        )
        now = member.sim.now
        best = float("inf")
        for instance in prefill_capable:
            if instance.failed or instance.name in member.known_failed:
                continue
            busy = [lane.busy_until - now for lane in instance.lanes if lane.busy]
            remaining = max(0.0, min(busy)) if busy else 0.0
            tokens = instance.queued_prefill_tokens() + request.prompt_tokens
            best = min(best, remaining + instance.latency.prefill(tokens).duration)
        if best == float("inf"):
            # Every instance is down; fall back to relative load so routing
            # still makes a deterministic choice.
            return float(member_load(member))
        return best


@ROUTING_POLICIES.register("tier-aware")
class TierAwareRouting(RoutingPolicy):
    """Tier-weighted load balancing (ROADMAP: tier-aware routing).

    Each member's load is the tier-weighted count of its unresolved
    requests — interactive work counts triple, standard double, best-effort
    single — so a member busy with interactive traffic looks *heavier* than
    one holding the same number of best-effort requests.  Interactive and
    standard arrivals join the lightest member; best-effort arrivals join
    the heaviest (they absorb the stragglers), which keeps the light
    members fast for the latency-sensitive tiers.

    On heterogeneous fleets the count alone mis-ranks unequal hardware, so
    the weighted count is scaled into estimated *seconds* by the member's
    own service scale — the time its prefill latency model needs for a
    reference prompt.  An H100 holding six requests can genuinely be
    "lighter" than an A800 holding four.  On homogeneous fleets every
    member shares one scale, so the ordering (ties included) is exactly
    the pre-scale ordering and old goldens keep their digests.
    """

    name = "tier-aware"

    #: Relative weight of one unresolved request, per tier.  Unknown tiers
    #: weigh like ``standard``.
    TIER_WEIGHTS = {"interactive": 3.0, "standard": 2.0, "best_effort": 1.0}

    #: Prompt length the service scale prices (one mid-size prefill).
    REFERENCE_TOKENS = 512

    def __init__(self) -> None:
        # Latency-model object -> its reference prefill seconds.  Keyed by
        # the model instance itself (a replan rebuilds instances, so the
        # new latency model re-prices automatically); the model reference
        # in the value pins it against id() reuse.
        self._scales: dict[int, tuple[object, float]] = {}

    def service_scale(self, member: "ServingSystem") -> float:
        """Seconds this member's hardware needs for a reference prefill.

        Members without instances (stubs, fully-degraded systems) scale
        by 1.0 — the score falls back to the pure tier-weighted count.
        """
        instance = getattr(member, "prefill_instance", None)
        if instance is None:
            instances = getattr(member, "instances", None)
            instance = instances[0] if instances else None
        if instance is None:
            return 1.0
        latency = instance.latency
        cached = self._scales.get(id(latency))
        if cached is None or cached[0] is not latency:
            cached = (latency, latency.prefill(self.REFERENCE_TOKENS).duration)
            self._scales[id(latency)] = cached
        return cached[1]

    def weighted_load(self, member: "ServingSystem") -> float:
        count = sum(
            self.TIER_WEIGHTS.get(tier, 2.0) * n
            for tier, n in member.in_flight_by_tier().items()
        )
        return count * self.service_scale(member)

    def select(
        self, fleet: "ServingFleet", candidates: Sequence[int], request: Request
    ) -> int:
        if request.tier == "best_effort":
            return max(candidates, key=lambda i: self.weighted_load(fleet.members[i]))
        return min(candidates, key=lambda i: self.weighted_load(fleet.members[i]))


@ROUTING_POLICIES.register("prefix-affinity")
class PrefixAffinityRouting(RoutingPolicy):
    """KV-locality-aware routing (ROADMAP: prefix caching + affinity).

    The router keeps a per-member LRU estimate of which shared prefixes are
    warm there — the same shape as llmserve's prefix-awareness estimator.
    A request carrying a ``prefix_hash`` joins the least-loaded member
    believed to hold that prefix warm; with no warm member (or no shared
    prefix at all) it falls back to plain least-loaded, and the chosen
    member is optimistically marked warm — it is about to compute and
    publish the prefix.  ``observe_completion`` refreshes the estimate from
    ground truth; ``observe_failure`` forgets a crashed member's whole warm
    set (its KV pool, cache included, died with it).

    Pure estimator state: the router never inspects member caches, so it
    composes with any member type — and its predictions degrade gracefully
    to least-loaded when caching is disabled member-side.
    """

    name = "prefix-affinity"

    #: Distinct prefixes remembered per member before LRU forgetting.
    WARM_CAPACITY = 256

    def __init__(self) -> None:
        # member index -> ordered set of prefix hashes, LRU first.
        self._warm: dict[int, dict[int, None]] = {}

    def warm_prefixes(self, index: int) -> tuple[int, ...]:
        """The prefix hashes currently believed warm on member ``index``."""
        return tuple(self._warm.get(index, ()))

    def _touch(self, index: int, prefix_hash: int) -> None:
        warm = self._warm.setdefault(index, {})
        warm.pop(prefix_hash, None)
        warm[prefix_hash] = None
        while len(warm) > self.WARM_CAPACITY:
            del warm[next(iter(warm))]

    def select(
        self, fleet: "ServingFleet", candidates: Sequence[int], request: Request
    ) -> int:
        prefix_hash = request.prefix_hash
        if prefix_hash:
            warm = [i for i in candidates if prefix_hash in self._warm.get(i, ())]
            if warm:
                choice = min(warm, key=lambda i: member_load(fleet.members[i]))
                self._touch(choice, prefix_hash)
                return choice
        choice = min(candidates, key=lambda i: member_load(fleet.members[i]))
        if prefix_hash:
            self._touch(choice, prefix_hash)
        return choice

    def observe_completion(
        self, fleet: "ServingFleet", index: int, request: Request
    ) -> None:
        if request.prefix_hash:
            self._touch(index, request.prefix_hash)

    def observe_failure(self, fleet: "ServingFleet", index: int) -> None:
        # The crashed member's KV pool — warm prefixes included — is gone.
        self._warm.pop(index, None)
