"""Multi-tenant fair-share admission: WFQ + SRPT bias + aging, budgets,
and token-bucket rate limiting.

Tiers (PR 4) rank *how urgent* a request is; nothing stops one tenant from
monopolising a tier and starving everyone else in it.  ``fair-share``
closes that hole with three independent mechanisms, all deterministic:

* **WFQ virtual-time queueing** (start-time fair queueing).  Each admitted
  request gets a start tag ``S = max(V, F_tenant)`` and a finish tag
  ``F = S + size / weight``; the virtual clock ``V`` advances to the
  largest start tag issued (monotone).  The queue key folds in an SRPT
  bias (short jobs first) and an aging credit (waited seconds convert to
  virtual service, so no request starves):

      key = F + srpt_bias * size + aging_rate * now

  The aging term looks inverted but is exact: the dynamic priority
  ``F - aging_rate * waited`` differs from this static key only by a term
  common to every queued request at comparison time, so the *ordering* is
  identical — and static keys let the instance's existing tier-ordered
  insertion sort stay the single queue discipline.

* **Per-tenant budgets** — concurrency, tokens-in-flight, and KV bytes —
  enforced at admission, *unconditionally* (unlike the degraded-mode
  nested caps, which only engage once a failure is detected).  A tenant
  over budget sheds its own arrivals; everyone else is untouched.

* **Token-bucket rate limiting** at the fleet gateway
  (:class:`TenantRateLimiter`), refilled deterministically from sim time.

The nested tier caps are layered *under* fair-share, not replaced:
``FairShareAdmission`` subclasses ``NestedCapsAdmission`` and runs its
degraded-mode logic after the budget check.  See docs/fair-share.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.policies.admission import ADMISSION_POLICIES, NestedCapsAdmission
from repro.serving.request import Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.system import ServingSystem


# -- configuration -------------------------------------------------------------


def _parse_weights(text: str) -> tuple[tuple[str, float], ...]:
    """Parse ``"heavy=1,light=4"`` into weight pairs (same grammar as mixes)."""
    weights = []
    seen = set()
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"cannot parse tenant-weight entry {part!r}; expected tenant=weight"
            )
        tenant, raw = part.split("=", 1)
        tenant = tenant.strip()
        try:
            weight = float(raw)
        except ValueError:
            raise ValueError(f"tenant {tenant!r} has non-numeric weight {raw!r}")
        if not tenant:
            raise ValueError("tenant names must be non-empty")
        if tenant in seen:
            raise ValueError(f"tenant {tenant!r} appears twice in the weights")
        if not weight > 0:
            raise ValueError(f"tenant {tenant!r} needs a positive weight, got {weight}")
        seen.add(tenant)
        weights.append((tenant, weight))
    return tuple(weights)


@dataclass(frozen=True)
class FairShareConfig:
    """Knobs of the fair-share discipline.

    All defaults are inert: unit weights, no SRPT bias, no aging, no
    budgets — pure per-tenant WFQ.  Budgets are *per tenant*: each tenant
    may hold at most ``max_inflight`` unresolved requests,
    ``max_tokens`` prompt+output tokens in flight, and ``max_kv_bytes``
    of (eventual) KV footprint at any sim instant.
    """

    weights: tuple[tuple[str, float], ...] = ()
    srpt_bias: float = 0.0
    aging_rate: float = 0.0
    max_inflight: Optional[int] = None
    max_tokens: Optional[int] = None
    max_kv_bytes: Optional[float] = None

    def __post_init__(self) -> None:
        seen = set()
        for tenant, weight in self.weights:
            if not tenant:
                raise ValueError("tenant names must be non-empty")
            if tenant in seen:
                raise ValueError(f"tenant {tenant!r} appears twice in the weights")
            if not weight > 0:
                raise ValueError(
                    f"tenant {tenant!r} needs a positive weight, got {weight}"
                )
            seen.add(tenant)
        if self.srpt_bias < 0:
            raise ValueError("srpt_bias must be non-negative")
        if self.aging_rate < 0:
            raise ValueError("aging_rate must be non-negative")
        for name in ("max_inflight", "max_tokens", "max_kv_bytes"):
            value = getattr(self, name)
            if value is not None and not value > 0:
                raise ValueError(f"{name} must be positive when set, got {value}")

    @classmethod
    def parse_weights(cls, text: str) -> tuple[tuple[str, float], ...]:
        return _parse_weights(text)

    def weight_for(self, tenant: str) -> float:
        for name, weight in self.weights:
            if name == tenant:
                return weight
        return 1.0

    def weights_spec(self) -> str:
        return ",".join(f"{tenant}={weight:g}" for tenant, weight in self.weights)

    def spec_string(self) -> str:
        """Compact canonical form, stamped into run fingerprints."""
        parts = []
        if self.weights:
            parts.append(f"w:{self.weights_spec()}")
        if self.srpt_bias:
            parts.append(f"srpt:{self.srpt_bias:g}")
        if self.aging_rate:
            parts.append(f"aging:{self.aging_rate:g}")
        if self.max_inflight is not None:
            parts.append(f"inflight:{self.max_inflight}")
        if self.max_tokens is not None:
            parts.append(f"tokens:{self.max_tokens}")
        if self.max_kv_bytes is not None:
            parts.append(f"kv:{self.max_kv_bytes:g}")
        return ";".join(parts) or "wfq"


#: Config used when a system selects ``--admission fair-share`` without
#: tuning anything: pure WFQ over unit weights.
DEFAULT_FAIRSHARE = FairShareConfig()


# -- WFQ virtual clock ---------------------------------------------------------


class FairShareClock:
    """Start-time fair queueing virtual clock (one per serving system).

    :meth:`stamp` issues the queue key (and start tag) for one admitted
    request; :meth:`record_service` advances the virtual clock to the
    start tag of served work.  Advancing ``V`` only at *service* is what
    makes the shares come out weighted: if arrivals advanced it, a
    backlogged tenant would drag ``V`` up to its own runaway finish tags
    and erase the differentiation entirely.  ``virtual_time`` is monotone
    non-decreasing — the property suite checks this over random
    interleavings.
    """

    def __init__(self, config: FairShareConfig = DEFAULT_FAIRSHARE) -> None:
        self.config = config
        self.virtual_time = 0.0
        self._finish: dict[str, float] = {}

    def stamp(self, tenant: str, size: float, now: float) -> tuple[float, float]:
        """Issue ``(queue key, start tag)`` for one admitted request."""
        if not size > 0:
            raise ValueError(f"request size must be positive, got {size}")
        start = max(self.virtual_time, self._finish.get(tenant, 0.0))
        finish = start + size / self.config.weight_for(tenant)
        self._finish[tenant] = finish
        key = (
            finish
            + self.config.srpt_bias * size
            + self.config.aging_rate * now
        )
        return key, start

    def record_service(self, start: float) -> None:
        """A request with start tag ``start`` was served: advance the clock.

        An idle tenant's stale finish tag eventually falls below ``V``, so
        on return it restarts at the current clock instead of replaying
        its entire idle period as virtual credit.
        """
        if start > self.virtual_time:
            self.virtual_time = start

    def tenant_backlog(self, tenant: str) -> float:
        """Virtual service this tenant is ahead of the clock by."""
        return max(0.0, self._finish.get(tenant, 0.0) - self.virtual_time)


class FairShareQueue:
    """A standalone min-key queue over :class:`FairShareClock` keys.

    The serving path embeds the keys into the instance's tier-ordered
    waiting queue instead; this container exists so the WFQ discipline
    itself is testable in isolation (Hypothesis property suite:
    monotonicity, weighted shares, no starvation).
    """

    def __init__(self, config: FairShareConfig = DEFAULT_FAIRSHARE) -> None:
        self.clock = FairShareClock(config)
        self._items: list[tuple[float, int, str, float, float]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._items)

    def push(self, tenant: str, size: float, now: float = 0.0) -> float:
        key, start = self.clock.stamp(tenant, size, now)
        self._items.append((key, self._seq, tenant, size, start))
        self._seq += 1
        return key

    def pop(self) -> tuple[str, float]:
        """Serve the minimum-key request (FIFO on exact ties)."""
        if not self._items:
            raise IndexError("pop from an empty fair-share queue")
        best = min(range(len(self._items)), key=lambda i: self._items[i][:2])
        _, _, tenant, size, start = self._items.pop(best)
        self.clock.record_service(start)
        return tenant, size


# -- token bucket --------------------------------------------------------------


class TokenBucket:
    """Deterministic token bucket: ``rate`` tokens/s, capacity ``burst``.

    Refill is computed lazily from sim time — no timers, no wall clock —
    so replaying the same (now, cost) sequence always yields the same
    admit/deny decisions.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if not rate > 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if not burst > 0:
            raise ValueError(f"burst must be positive, got {burst}")
        self.rate = rate
        self.burst = burst
        self.tokens = burst
        self.last_refill = 0.0

    def refill(self, now: float) -> None:
        if now > self.last_refill:
            self.tokens = min(self.burst, self.tokens + (now - self.last_refill) * self.rate)
            self.last_refill = now

    def try_take(self, now: float, cost: float = 1.0) -> bool:
        self.refill(now)
        if self.tokens + 1e-12 >= cost:
            self.tokens -= cost
            return True
        return False


class TenantRateLimiter:
    """Per-tenant token buckets at the fleet gateway.

    Buckets are created lazily (full) on a tenant's first arrival; every
    gateway submit costs one token.  Attach to a fleet via
    ``fleet.rate_limiter = TenantRateLimiter(rate, burst)``.
    """

    def __init__(self, rate: float, burst: Optional[float] = None) -> None:
        self.rate = rate
        self.burst = burst if burst is not None else max(1.0, rate)
        self.buckets: dict[str, TokenBucket] = {}
        self.denied: dict[str, int] = {}

    def allow(self, request: Request, now: float) -> bool:
        bucket = self.buckets.get(request.tenant)
        if bucket is None:
            bucket = self.buckets[request.tenant] = TokenBucket(self.rate, self.burst)
        if bucket.try_take(now):
            return True
        self.denied[request.tenant] = self.denied.get(request.tenant, 0) + 1
        return False


# -- admission policy ----------------------------------------------------------


@ADMISSION_POLICIES.register("fair-share")
class FairShareAdmission(NestedCapsAdmission):
    """WFQ fair-share admission layered over the nested tier caps.

    Order of checks on every arrival:

    1. **Budgets** (unconditional): the arriving tenant's in-flight usage
       — including this request — against ``FairShareConfig`` budgets.
       Over budget ⇒ shed this arrival (never another tenant's work).
    2. **Nested tier caps** (degraded mode only): the inherited
       ``NestedCapsAdmission`` logic, unchanged.
    3. **Stamp**: the WFQ queue key is written to ``request.extra
       ["fs_key"]``; ``Instance.enqueue`` orders equal-tier work by it.
    """

    name = "fair-share"

    def __init__(self) -> None:
        self._clock: Optional[FairShareClock] = None
        self._wired = False

    def _config(self, system: "ServingSystem") -> FairShareConfig:
        cfg = getattr(system.config, "fairshare", None)
        return cfg if cfg is not None else DEFAULT_FAIRSHARE

    def clock_for(self, system: "ServingSystem") -> FairShareClock:
        if self._clock is None:
            self._clock = FairShareClock(self._config(system))
        return self._clock

    def admit(self, system: "ServingSystem", request: Request) -> bool:
        cfg = self._config(system)
        reason = self._over_budget(system, cfg, request)
        if reason is not None:
            system.metrics.bump("tenant_budget_shed")
            system.metrics.bump(f"tenant_budget_shed[tenant:{request.tenant}]")
            system.trace.emit(
                system.sim.now,
                "admission",
                "budget-shed",
                request_id=request.request_id,
                tenant=request.tenant,
                reason=reason,
            )
            return False
        if not super().admit(system, request):
            return False
        if not self._wired:
            # Completions feed the virtual clock (record_service), so an
            # idle tenant's return is measured against served work, not
            # its own stale finish tags.
            system.finish_listeners.append(self._observe_finish)
            self._wired = True
        size = float(request.prompt_tokens + request.output_tokens)
        key, start = self.clock_for(system).stamp(
            request.tenant, size, system.sim.now
        )
        request.extra["fs_key"] = key
        request.extra["fs_start"] = start
        return True

    def _observe_finish(self, request: Request, instance=None) -> None:
        start = request.extra.get("fs_start")
        if start is not None and self._clock is not None:
            self._clock.record_service(start)

    def _over_budget(
        self, system: "ServingSystem", cfg: FairShareConfig, request: Request
    ) -> Optional[str]:
        """Budget violated by this arrival?  Returns the reason or None.

        The system's tenant ledger is bumped before admission runs, so the
        usage numbers already include the arriving request — strict ``>``
        comparisons therefore admit exactly up to the budget.
        """
        count, tokens = system.tenant_usage(request.tenant)
        if cfg.max_inflight is not None and count > cfg.max_inflight:
            return "inflight"
        if cfg.max_tokens is not None and tokens > cfg.max_tokens:
            return "tokens"
        if cfg.max_kv_bytes is not None:
            kv_bytes = tokens * system.config.model.kv_bytes_per_token
            if kv_bytes > cfg.max_kv_bytes:
                return "kv-bytes"
        return None


__all__ = [
    "DEFAULT_FAIRSHARE",
    "FairShareAdmission",
    "FairShareClock",
    "FairShareConfig",
    "FairShareQueue",
    "TenantRateLimiter",
    "TokenBucket",
]
