"""Instance-level preemption (swap-victim) policies.

``latest-arrived`` is the verbatim extraction of the pre-policy-layer
``Instance._pick_swap_victim``: when KV pressure forces an eviction, swap
out the most recently arrived running request (it has the least sunk work).
Instance subclasses narrow *eligibility* via ``Instance.swap_candidates``
(e.g. WindServe decode instances never evict a mid-migration request); the
policy only orders the eligible set, so extraction is byte-identical.

``tier-aware`` prefers the lowest tier first (latest arrival breaking
ties), so under memory pressure best-effort work is evicted before
interactive work regardless of arrival order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.policies.base import PolicyRegistry, PreemptionPolicy
from repro.serving.request import TIER_PRIORITY, Request

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serving.instance import Instance

PREEMPTION_POLICIES = PolicyRegistry("preemption")


@PREEMPTION_POLICIES.register("latest-arrived")
class LatestArrivedPreemption(PreemptionPolicy):
    """Swap out the most recently arrived eligible request (least sunk work)."""

    name = "latest-arrived"

    def pick_swap_victim(
        self, instance: "Instance", exclude: Optional[Request] = None
    ) -> Optional[Request]:
        candidates = instance.swap_candidates(exclude)
        if not candidates:
            return None
        return max(candidates, key=lambda r: r.arrival_time)


@PREEMPTION_POLICIES.register("tier-aware")
class TierAwarePreemption(PreemptionPolicy):
    """Swap out the lowest tier first; latest arrival breaks ties within a tier."""

    name = "tier-aware"

    def pick_swap_victim(
        self, instance: "Instance", exclude: Optional[Request] = None
    ) -> Optional[Request]:
        candidates = instance.swap_candidates(exclude)
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda r: (TIER_PRIORITY[r.tier], r.arrival_time, r.request_id),
        )
