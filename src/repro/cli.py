"""Command-line interface.

Run single experiments, rate sweeps, or placement searches without writing
Python::

    python -m repro run --system windserve --model opt-13b --dataset sharegpt \
        --rate 4.0 --requests 500
    python -m repro sweep --systems windserve,distserve,vllm --rates 2,3,4,5
    python -m repro placement --model opt-13b --dataset sharegpt --rate 1.5
    python -m repro golden record
    python -m repro golden check
    python -m repro differential --seeds 0,1,2
    python -m repro chaos --plans decode-crash,link-degrade
    python -m repro chaos --smoke
    python -m repro prefix --smoke
    python -m repro tenants --smoke
    python -m repro models
    python -m repro datasets
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.harness.placement_search import search_placement
from repro.harness.report import format_table
from repro.harness.runner import SYSTEM_NAMES, ExperimentSpec, run_experiment
from repro.models.registry import MODEL_REGISTRY
from repro.workloads.datasets import DATASET_REGISTRY


def _parse_parallel(value: str) -> tuple[int, int]:
    """Parse 'tp2pp1' / '2,1' / '2' into (tp, pp)."""
    value = value.lower().replace("tp", "").replace("pp", ",").strip(",")
    parts = [p for p in value.replace(" ", "").split(",") if p]
    if len(parts) == 1:
        return int(parts[0]), 1
    if len(parts) == 2:
        return int(parts[0]), int(parts[1])
    raise argparse.ArgumentTypeError(f"cannot parse parallelism {value!r}")


def _fairshare_from_args(args: argparse.Namespace):
    """Build a FairShareConfig from the tenant budget flags (or None)."""
    weights = getattr(args, "tenant_weights", None)
    max_inflight = getattr(args, "tenant_max_inflight", None)
    max_tokens = getattr(args, "tenant_max_tokens", None)
    if weights is None and max_inflight is None and max_tokens is None:
        return None
    from repro.policies.fairshare import FairShareConfig

    return FairShareConfig(
        weights=FairShareConfig.parse_weights(weights) if weights else (),
        max_inflight=max_inflight,
        max_tokens=max_tokens,
    )


def _spec_from_args(args: argparse.Namespace, system: str, rate: float) -> ExperimentSpec:
    return ExperimentSpec(
        system=system,
        model=args.model,
        dataset=args.dataset,
        rate_per_gpu=rate,
        num_requests=args.requests,
        seed=args.seed,
        prefill_parallel=args.prefill_parallel,
        decode_parallel=args.decode_parallel,
        num_node_gpus=args.node_gpus,
        arrival_process=args.arrivals,
        burstiness_cv=args.burstiness,
        tier_mix=args.tier_mix,
        prefix_mix=args.prefix_mix,
        tenant_mix=getattr(args, "tenant_mix", None),
        admission_policy=getattr(args, "admission", "nested-caps"),
        fairshare=_fairshare_from_args(args),
    )


def _result_row(result) -> dict:
    row = result.row()
    row["slo_ttft_s"] = result.slo.ttft
    row["slo_tpot_s"] = result.slo.tpot
    return row


def cmd_run(args: argparse.Namespace) -> int:
    if (mix_error := _validate_tenant_mix(args)) is not None:
        print(mix_error, file=sys.stderr)
        return 2
    result = run_experiment(_spec_from_args(args, args.system, args.rate))
    row = _result_row(result)
    if args.json:
        print(json.dumps({"summary": row, "counters": result.counters}, indent=2))
    else:
        print(format_table([row], columns=list(row)[:12]))
        interesting = {k: v for k, v in result.counters.items() if v}
        if interesting:
            print("\ncounters:", ", ".join(f"{k}={v}" for k, v in sorted(interesting.items())))
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    rows = []
    for rate in args.rates:
        for system in args.systems:
            result = run_experiment(_spec_from_args(args, system, rate))
            rows.append(_result_row(result))
    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        print(
            format_table(
                rows,
                columns=[
                    "rate_per_gpu",
                    "system",
                    "ttft_p50",
                    "ttft_p99",
                    "tpot_p90",
                    "tpot_p99",
                    "slo_attainment",
                    "swap_events",
                ],
            )
        )
    return 0


def cmd_placement(args: argparse.Namespace) -> int:
    scores = search_placement(
        system=args.system,
        model=args.model,
        dataset=args.dataset,
        rate_per_gpu=args.rate,
        num_requests=args.requests,
        num_node_gpus=args.node_gpus,
        seed=args.seed,
    )
    rows = [
        {
            "placement": s.label(),
            "gpus": s.gpus_used,
            "slo_attainment": s.slo_attainment,
            "goodput_per_gpu": s.goodput_per_gpu,
        }
        for s in scores
    ]
    if args.json:
        print(json.dumps(rows, indent=2))
    else:
        print(format_table(rows))
    return 0


def cmd_breakdown(args: argparse.Namespace) -> int:
    from repro.harness.breakdown import breakdown_rows
    from repro.harness.timeline import render_timeline
    from repro.harness.runner import build_system, resolve_slo
    from repro.models.registry import get_model
    from repro.workloads.arrivals import TierMix
    from repro.workloads.datasets import get_dataset
    from repro.workloads.prefixes import PrefixMix
    from repro.workloads.tenants import TenantMix
    from repro.workloads.trace import generate_trace

    if (mix_error := _validate_tenant_mix(args)) is not None:
        print(mix_error, file=sys.stderr)
        return 2
    spec = _spec_from_args(args, args.system, args.rate)
    slo = resolve_slo(spec)
    system = build_system(spec, slo)
    # The timeline needs tracing; flip it on before any batch runs.
    system.trace.enabled = True
    for instance in system.instances:
        instance.trace = system.trace
    trace = generate_trace(
        get_dataset(spec.dataset),
        rate=spec.rate_per_gpu * spec.gpus_used,
        num_requests=spec.num_requests,
        seed=spec.seed,
        model=get_model(spec.model),
        arrival_process=spec.arrival_process,
        burstiness_cv=spec.burstiness_cv,
        tier_mix=TierMix.parse(spec.tier_mix) if spec.tier_mix else None,
        prefix_mix=PrefixMix.parse(spec.prefix_mix) if spec.prefix_mix else None,
        tenant_mix=TenantMix.parse(spec.tenant_mix) if spec.tenant_mix else None,
    )
    metrics = system.run_to_completion(trace)
    rows = breakdown_rows(metrics.completed, label=spec.system)
    if args.json:
        print(json.dumps(rows, indent=2))
        return 0
    print(format_table(rows, precision=4))
    print()
    print(render_timeline(system, bins=60))
    return 0


def cmd_golden(args: argparse.Namespace) -> int:
    from repro.harness.golden import (
        GOLDEN_MATRIX,
        check_goldens,
        record_goldens,
        render_migration_report,
        rerecord_goldens,
        validate_golden_store,
    )

    only = args.only or None
    if args.action == "list":
        for scenario in GOLDEN_MATRIX:
            print(scenario.name)
        return 0
    try:
        if args.action == "record":
            for path in record_goldens(
                args.dir, only=only, reason=args.reason, tag=args.tag
            ):
                print(f"recorded {path}")
            return 0
        if args.action == "rerecord":
            if not args.reason:
                print(
                    "error: rerecord requires --reason (the provenance line "
                    "reviewers read)",
                    file=sys.stderr,
                )
                return 2
            outcomes = rerecord_goldens(
                args.dir, reason=args.reason, tag=args.tag, only=only
            )
            report = render_migration_report(outcomes)
            print(report)
            if args.report_out is not None:
                args.report_out.write_text(report + "\n")
                print(f"\nmigration report written to {args.report_out}")
            return 0
        if args.action == "validate":
            problems = validate_golden_store(args.dir, only=only)
            for problem in problems:
                print(f"PROVENANCE: {problem}")
            if problems:
                print(f"\n{len(problems)} problem(s) in the golden store")
                return 1
            count = len(only) if only else len(GOLDEN_MATRIX)
            print(f"all {count} golden header(s) valid (format + provenance chain)")
            return 0
        diffs = check_goldens(args.dir, only=only)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for diff in diffs:
        print(diff.report())
    failed = sum(not d.passed for d in diffs)
    if failed:
        print(
            f"\n{failed}/{len(diffs)} golden scenario(s) diverged. If the behaviour "
            "change is intentional, re-record with `python -m repro golden rerecord "
            "--reason ...` (see docs/determinism.md)."
        )
        return 1
    print(f"\nall {len(diffs)} golden scenario(s) match")
    return 0


def cmd_differential(args: argparse.Namespace) -> int:
    from repro.harness.differential import DifferentialSpec, run_differential

    failures = 0
    for seed in args.seeds:
        spec = DifferentialSpec(
            model=args.model,
            dataset=args.dataset,
            rate_per_gpu=args.rate,
            num_requests=args.requests,
            seed=seed,
            arrival_process=args.arrivals,
            burstiness_cv=args.burstiness,
            systems=tuple(args.systems),
        )
        result = run_differential(spec)
        print(result.report())
        failures += not result.passed
    return 1 if failures else 0


def _validate_tier_mix(args: argparse.Namespace) -> Optional[str]:
    """Parse-check ``--tier-mix`` up front; returns an error message or None."""
    if not args.tier_mix:
        return None
    from repro.workloads.arrivals import TierMix

    try:
        TierMix.parse(args.tier_mix)
    except ValueError as exc:
        return f"error: bad --tier-mix: {exc}"
    return None


def _validate_prefix_mix(args: argparse.Namespace) -> Optional[str]:
    """Parse-check ``--prefix-mix`` up front; returns an error message or None."""
    if not getattr(args, "prefix_mix", None):
        return None
    from repro.workloads.prefixes import PrefixMix

    try:
        PrefixMix.parse(args.prefix_mix)
    except ValueError as exc:
        return f"error: bad --prefix-mix: {exc}"
    return None


def _validate_tenant_mix(args: argparse.Namespace) -> Optional[str]:
    """Parse-check the tenant flags up front; returns an error message or None."""
    if getattr(args, "tenant_mix", None):
        from repro.workloads.tenants import TenantMix

        try:
            TenantMix.parse(args.tenant_mix)
        except ValueError as exc:
            return f"error: bad --tenant-mix: {exc}"
    try:
        _fairshare_from_args(args)
    except ValueError as exc:
        return f"error: bad tenant budget flags: {exc}"
    return None


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import FAULT_PLAN_NAMES
    from repro.harness.chaos import run_chaos_matrix

    for mix_error in (
        _validate_tier_mix(args),
        _validate_prefix_mix(args),
        _validate_tenant_mix(args),
    ):
        if mix_error is not None:
            print(mix_error, file=sys.stderr)
            return 2
    if args.fleet:
        return _cmd_chaos_fleet(args)
    systems, plans = args.systems, args.plans
    if plans is None:
        plans = ["decode-crash", "link-degrade", "straggler"]
    requests = args.requests
    if args.smoke:
        # One small deterministic cell for CI: fast, but still exercises
        # crash -> detect -> re-queue -> recover end to end.
        systems, plans, requests = ["windserve"], ["decode-crash"], min(requests, 60)
    for plan in plans:
        if plan not in FAULT_PLAN_NAMES:
            print(
                f"error: unknown fault plan {plan!r}; known: {FAULT_PLAN_NAMES}",
                file=sys.stderr,
            )
            return 2
    results = run_chaos_matrix(
        systems=systems,
        plans=plans,
        model=args.model,
        dataset=args.dataset,
        rate_per_gpu=args.rate,
        num_requests=requests,
        seed=args.seed,
        arrival_process=args.arrivals,
        burstiness_cv=args.burstiness,
        tier_mix=args.tier_mix,
        prefix_mix=args.prefix_mix,
        admission_policy=args.admission,
        tenant_mix=args.tenant_mix,
        fairshare=_fairshare_from_args(args),
    )
    rows = [r.row() for r in results]
    if args.json:
        payload = [
            {
                **r.row(),
                "resilience": r.resilience,
                "plan_events": r.plan_events,
                "fingerprint": r.fingerprint,
                "completion_curve": r.completion_curve,
                "tier_report": r.tier_report,
                "violations": r.violations,
            }
            for r in results
        ]
        print(json.dumps(payload, indent=2))
    else:
        print(format_table(rows))
    failed = [r for r in results if not r.passed]
    for result in failed:
        print(
            f"\n[VIOLATED] {result.spec.system} / {result.spec.fault_plan}:",
            file=sys.stderr,
        )
        for violation in result.violations:
            print(f"    {violation}", file=sys.stderr)
    if failed:
        return 1
    print(f"\nall {len(results)} chaos run(s) satisfied the resilience invariants")
    return 0


def _cmd_chaos_fleet(args: argparse.Namespace) -> int:
    from repro.faults import FLEET_FAULT_PLAN_NAMES
    from repro.harness.chaos import DEFAULT_FLEET_CHAOS_PLANS, run_fleet_chaos_matrix

    plans = args.plans if args.plans is not None else list(DEFAULT_FLEET_CHAOS_PLANS)
    requests = args.requests
    nodes, pairs, standby = args.nodes, args.pairs_per_node, args.standby
    if args.smoke:
        # One small member-crash cell with a warm standby: exercises the
        # whole fleet loop (crash -> heartbeat detect -> cross-node re-route
        # -> standby promotion -> rejoin) in a few seconds.
        plans, requests = ["member-crash"], min(requests, 48)
        nodes, pairs, standby = 2, 2, 1
    for plan in plans:
        if plan not in FLEET_FAULT_PLAN_NAMES:
            print(
                f"error: unknown fleet fault plan {plan!r}; "
                f"known: {FLEET_FAULT_PLAN_NAMES}",
                file=sys.stderr,
            )
            return 2
    results = run_fleet_chaos_matrix(
        plans=plans,
        model=args.model,
        dataset=args.dataset,
        rate_per_gpu=args.rate,
        num_requests=requests,
        seed=args.seed,
        arrival_process=args.arrivals,
        burstiness_cv=args.burstiness,
        num_nodes=nodes,
        pairs_per_node=pairs,
        policy=args.router or "round-robin",
        span_nodes=args.span_nodes,
        standby=standby,
        tier_mix=args.tier_mix,
        prefix_mix=args.prefix_mix,
        admission_policy=args.admission,
        tenant_mix=args.tenant_mix,
        fairshare=_fairshare_from_args(args),
        tenant_rate=args.tenant_rate,
        tenant_burst=args.tenant_burst,
    )
    if args.json:
        payload = [
            {
                **r.row(),
                "resilience": r.resilience,
                "fleet_resilience": r.fleet_resilience,
                "plan_events": r.plan_events,
                "fingerprint": r.fingerprint,
                "tier_report": r.tier_report,
                "violations": r.violations,
            }
            for r in results
        ]
        print(json.dumps(payload, indent=2))
    else:
        print(format_table([r.row() for r in results]))
    failed = [r for r in results if not r.passed]
    for result in failed:
        print(f"\n[VIOLATED] fleet / {result.spec.fault_plan}:", file=sys.stderr)
        for violation in result.violations:
            print(f"    {violation}", file=sys.stderr)
    if failed:
        return 1
    print(f"\nall {len(results)} fleet chaos run(s) satisfied the resilience invariants")
    return 0


def cmd_prefix(args: argparse.Namespace) -> int:
    from repro.harness.prefix_compare import PrefixComparisonSpec, run_prefix_comparison

    if (mix_error := _validate_prefix_mix(args)) is not None:
        print(mix_error, file=sys.stderr)
        return 2
    kwargs = dict(
        model=args.model,
        dataset=args.dataset,
        rate_per_gpu=args.rate,
        num_requests=args.requests,
        seed=args.seed,
        num_nodes=args.nodes,
        pairs_per_node=args.pairs_per_node,
        prefix_cache_tokens=args.cache_tokens,
    )
    if args.prefix_mix:
        kwargs["prefix_mix"] = args.prefix_mix
    if args.smoke:
        # One fast deterministic comparison cell for CI.
        kwargs["num_requests"] = min(args.requests, 160)
    report = run_prefix_comparison(PrefixComparisonSpec(**kwargs))
    payload = report.as_dict()
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        rows = [run.as_dict() for run in report.runs.values()]
        for row in rows:
            row.pop("violations", None)
            row["fingerprint"] = row["fingerprint"][:12]
        print(format_table(rows, precision=4))
    for name, run in report.runs.items():
        for violation in run.violations:
            print(f"[VIOLATED] {name}: {violation}", file=sys.stderr)
    if not report.passed:
        return 1
    if not report.affinity_beats_blind:
        print(
            "prefix-affinity did NOT beat least-loaded on mean TTFT + prefill work",
            file=sys.stderr,
        )
        return 1
    print(
        "\nprefix-affinity beats least-loaded on mean TTFT and total prefill "
        "tokens; all KV and conservation checks passed"
    )
    return 0


def cmd_hetero(args: argparse.Namespace) -> int:
    from repro.harness.hetero_compare import (
        HeteroComparisonSpec,
        run_hetero_comparison,
    )

    kwargs = dict(
        model=args.model,
        dataset=args.dataset,
        rate_per_gpu=args.rate,
        num_requests=args.requests,
        seed=args.seed,
        pairs_per_node=args.pairs_per_node,
        fault_plan=args.fault_plan,
    )
    if args.shape:
        kwargs["shape"] = args.shape
    if args.smoke:
        # One fast deterministic comparison point for CI (the default spec
        # already runs in ~1s; the cap just keeps explicit larger --requests
        # honest in smoke mode).
        kwargs["num_requests"] = min(args.requests, 480)
    try:
        spec = HeteroComparisonSpec(**kwargs)
        spec.parsed_shape()  # surface shape-spec errors as usage errors
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = run_hetero_comparison(spec)
    payload = report.as_dict()
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        rows = [run.as_dict() for run in report.runs.values()]
        for row in rows:
            row.pop("violations", None)
            row.pop("replans", None)
            row["fingerprint"] = row["fingerprint"][:12]
        print(format_table(rows, precision=4))
    for name, run in report.runs.items():
        for violation in run.violations:
            print(f"[VIOLATED] {name}: {violation}", file=sys.stderr)
    if not report.passed:
        return 1
    failed = False
    if not report.routing_wins:
        print(
            "predicted-ttft did NOT beat least-loaded on mean TTFT on the "
            "mixed fleet",
            file=sys.stderr,
        )
        failed = True
    if not report.replan_recovers:
        print(
            "failure-reactive re-planning did NOT recover SLO goodput >= "
            "the degraded (no-replan) run",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print(
        "\npredicted-ttft beats least-loaded on the mixed fleet, and "
        "re-planning recovers at least the degraded run's SLO goodput; "
        "all chaos invariants passed"
    )
    return 0


def cmd_tenants(args: argparse.Namespace) -> int:
    from repro.harness.tenant_compare import (
        TenantComparisonSpec,
        run_tenant_comparison,
    )

    kwargs = dict(
        model=args.model,
        dataset=args.dataset,
        rate_per_gpu=args.rate,
        num_requests=args.requests,
        seed=args.seed,
        num_light=args.light_tenants,
        light_weight=args.light_weight,
        tenant_max_inflight=args.tenant_max_inflight,
        burst_requests=args.burst_requests,
        isolation_bound=args.bound,
    )
    if args.smoke:
        # One fast deterministic comparison cell for CI.
        kwargs["num_requests"] = min(args.requests, 80)
        kwargs["burst_requests"] = min(args.burst_requests, 32)
    try:
        spec = TenantComparisonSpec(**kwargs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = run_tenant_comparison(spec)
    payload = report.as_dict()
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(report.report())
    for name, run in report.runs.items():
        for violation in run.violations:
            print(f"[VIOLATED] {name}: {violation}", file=sys.stderr)
    if not report.passed:
        if report.isolation_holds and not report.fifo_violates:
            print(
                "experiment did not discriminate: FIFO also held the isolation "
                "bound (raise the burst or lower --bound)",
                file=sys.stderr,
            )
        return 1
    print(
        "\nfair-share held the isolation bound the FIFO baseline violated; "
        "budgets were never exceeded and all conservation checks passed"
    )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.harness.perfbench import (
        BenchSpec,
        record_bench,
        smoke_spec,
        summarize,
        validate_bench_payload,
    )

    if args.smoke:
        spec = smoke_spec(num_requests=args.requests or 2_000, seed=args.seed)
    else:
        spec = BenchSpec(
            label=args.label,
            num_requests=args.requests or 100_000,
            seed=args.seed,
            model=args.model,
            dataset=args.dataset,
        )
    baseline = None
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
    path, payload = record_bench(
        spec, out=args.out, root=Path(args.root), baseline=baseline
    )
    problems = validate_bench_payload(payload)
    if problems:  # record_bench already validates; belt-and-braces for --smoke CI
        for problem in problems:
            print(f"SCHEMA: {problem}")
        return 1
    print(summarize(payload))
    print(f"wrote {path}")
    return 0


def cmd_models(args: argparse.Namespace) -> int:
    rows = [
        {
            "name": spec.name,
            "params_b": spec.total_params / 1e9,
            "layers": spec.num_layers,
            "hidden": spec.hidden_size,
            "heads": spec.num_heads,
            "kv_heads": spec.num_kv_heads,
            "context": spec.max_context,
            "kv_kib_per_token": spec.kv_bytes_per_token / 1024,
        }
        for spec in MODEL_REGISTRY.values()
    ]
    print(format_table(rows, precision=1))
    return 0


def cmd_datasets(args: argparse.Namespace) -> int:
    rows = [
        {
            "name": d.name,
            "prompt avg/med/p90": "/".join(str(x) for x in d.prompt_stats),
            "output avg/med/p90": "/".join(str(x) for x in d.output_stats),
        }
        for d in DATASET_REGISTRY.values()
    ]
    print(format_table(rows))
    return 0


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--model", default="opt-13b", choices=sorted(MODEL_REGISTRY))
    parser.add_argument("--dataset", default="sharegpt", choices=sorted(DATASET_REGISTRY))
    parser.add_argument("--requests", type=int, default=500)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--prefill-parallel", type=_parse_parallel, default=(2, 1), metavar="TPxPPy"
    )
    parser.add_argument(
        "--decode-parallel", type=_parse_parallel, default=(2, 1), metavar="TPxPPy"
    )
    parser.add_argument("--node-gpus", type=int, default=8)
    parser.add_argument("--arrivals", choices=("poisson", "bursty"), default="poisson")
    parser.add_argument("--burstiness", type=float, default=2.0)
    parser.add_argument(
        "--tier-mix",
        default=None,
        metavar="SPEC",
        help="SLO-tier mix, e.g. 'interactive=0.2,standard=0.5,best_effort=0.3' "
        "(default: all requests in the standard tier)",
    )
    parser.add_argument(
        "--prefix-mix",
        default=None,
        metavar="SPEC",
        help="shared-prefix population, e.g. "
        "'none=0.25,assistant=0.5:384,fewshot=0.25:640' (name=weight:tokens; "
        "default: no shared prefixes)",
    )
    parser.add_argument("--json", action="store_true", help="emit JSON instead of a table")


def _add_tenant_args(
    parser: argparse.ArgumentParser, admission: bool = True
) -> None:
    """Tenancy flags: population mix, fair-share budgets, admission choice.

    ``admission=False`` skips ``--admission`` for parsers (chaos) that
    already define it themselves.
    """
    parser.add_argument(
        "--tenant-mix",
        default=None,
        metavar="SPEC",
        help="tenant population, e.g. 'acme=0.6,beta=0.25,gamma=0.15' "
        "(default: all requests owned by the default tenant)",
    )
    parser.add_argument(
        "--tenant-weights",
        default=None,
        metavar="SPEC",
        help="WFQ weights for fair-share, e.g. 'acme=1,beta=4' "
        "(unlisted tenants get weight 1)",
    )
    parser.add_argument(
        "--tenant-max-inflight",
        type=int,
        default=None,
        help="per-tenant concurrent-request budget (fair-share admission)",
    )
    parser.add_argument(
        "--tenant-max-tokens",
        type=int,
        default=None,
        help="per-tenant in-flight prompt+output token budget (fair-share)",
    )
    if admission:
        from repro.policies import ADMISSION_POLICIES

        parser.add_argument(
            "--admission",
            choices=ADMISSION_POLICIES.names(),
            default="nested-caps",
            help="admission policy (fair-share enables WFQ + tenant budgets)",
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="WindServe reproduction experiment runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one experiment")
    run_p.add_argument("--system", default="windserve", choices=SYSTEM_NAMES)
    run_p.add_argument("--rate", type=float, required=True, help="per-GPU req/s")
    _add_workload_args(run_p)
    _add_tenant_args(run_p)
    run_p.set_defaults(func=cmd_run)

    sweep_p = sub.add_parser("sweep", help="sweep request rates across systems")
    sweep_p.add_argument(
        "--systems",
        type=lambda s: [x.strip() for x in s.split(",")],
        default=["windserve", "distserve", "vllm"],
    )
    sweep_p.add_argument(
        "--rates",
        type=lambda s: [float(x) for x in s.split(",")],
        required=True,
        help="comma-separated per-GPU rates",
    )
    _add_workload_args(sweep_p)
    sweep_p.set_defaults(func=cmd_sweep)

    place_p = sub.add_parser("placement", help="rank placements by simulation")
    place_p.add_argument("--system", default="distserve", choices=SYSTEM_NAMES)
    place_p.add_argument("--rate", type=float, required=True)
    _add_workload_args(place_p)
    place_p.set_defaults(func=cmd_placement)

    breakdown_p = sub.add_parser(
        "breakdown", help="per-stage latency decomposition + activity timeline"
    )
    breakdown_p.add_argument("--system", default="windserve", choices=SYSTEM_NAMES)
    breakdown_p.add_argument("--rate", type=float, required=True)
    _add_workload_args(breakdown_p)
    _add_tenant_args(breakdown_p)
    breakdown_p.set_defaults(func=cmd_breakdown)

    golden_p = sub.add_parser(
        "golden",
        help="record, rerecord (with provenance), check, or validate golden traces",
    )
    golden_p.add_argument(
        "action", choices=("record", "rerecord", "check", "validate", "list")
    )
    golden_p.add_argument(
        "--dir",
        type=Path,
        default=Path("tests") / "golden",
        help="golden store directory (default tests/golden)",
    )
    golden_p.add_argument(
        "--only",
        action="append",
        metavar="SCENARIO",
        help="restrict to a named scenario (repeatable; see `golden list`)",
    )
    golden_p.add_argument(
        "--reason",
        help="why the store is being re-recorded (required for rerecord; "
        "stamped into each golden's provenance header)",
    )
    golden_p.add_argument(
        "--tag",
        help="date-free PR tag stamped into provenance (e.g. pr8-cost-model)",
    )
    golden_p.add_argument(
        "--report-out",
        type=Path,
        metavar="PATH",
        help="also write the rerecord migration report to this file",
    )
    golden_p.set_defaults(func=cmd_golden)

    diff_p = sub.add_parser(
        "differential",
        help="run all systems on one identical workload and assert shared invariants",
    )
    diff_p.add_argument(
        "--systems",
        type=lambda s: [x.strip() for x in s.split(",")],
        default=["windserve", "distserve", "vllm"],
    )
    diff_p.add_argument(
        "--seeds",
        type=lambda s: [int(x) for x in s.split(",")],
        default=[0, 1, 2],
        help="comma-separated seeds, one differential run each",
    )
    diff_p.add_argument("--rate", type=float, default=3.0)
    _add_workload_args(diff_p)
    # Invariant checks don't need the default 500-request statistical power.
    diff_p.set_defaults(func=cmd_differential, requests=40)

    chaos_p = sub.add_parser(
        "chaos",
        help="inject fault plans and measure degraded-mode behaviour",
    )
    chaos_p.add_argument(
        "--systems",
        type=lambda s: [x.strip() for x in s.split(",")],
        default=["windserve", "distserve", "vllm"],
    )
    chaos_p.add_argument(
        "--plans",
        type=lambda s: [x.strip() for x in s.split(",")],
        default=None,
        help="comma-separated fault plans (FAULT_PLAN_NAMES, or "
        "FLEET_FAULT_PLAN_NAMES with --fleet)",
    )
    chaos_p.add_argument("--rate", type=float, default=3.0)
    chaos_p.add_argument(
        "--smoke",
        action="store_true",
        help="single fast cell (CI gate): windserve/decode-crash, or a "
        "member-crash fleet with warm standby under --fleet",
    )
    chaos_p.add_argument(
        "--fleet",
        action="store_true",
        help="run fleet-scope plans (member/node/NIC faults) against a "
        "WindServe fleet over a multi-node cluster",
    )
    chaos_p.add_argument("--nodes", type=int, default=2, help="fleet cluster nodes")
    chaos_p.add_argument("--pairs-per-node", type=int, default=2)
    chaos_p.add_argument(
        "--standby", type=int, default=0, help="warm standby members (autoscaled fleet)"
    )
    chaos_p.add_argument(
        "--span-nodes",
        action="store_true",
        help="place each pair's decode on the next node (hand-offs cross NICs)",
    )
    from repro.policies import ADMISSION_POLICIES, ROUTING_POLICIES

    chaos_p.add_argument(
        "--router",
        choices=ROUTING_POLICIES.names(),
        default=None,
        help="fleet routing policy (with --fleet; default round-robin)",
    )
    chaos_p.add_argument(
        "--admission",
        choices=ADMISSION_POLICIES.names(),
        default="nested-caps",
        help="degraded-mode admission policy",
    )
    chaos_p.add_argument(
        "--tenant-rate",
        type=float,
        default=0.0,
        help="per-tenant gateway rate limit in submits/s (with --fleet; "
        "0 disables the token-bucket limiter)",
    )
    chaos_p.add_argument(
        "--tenant-burst",
        type=float,
        default=0.0,
        help="token-bucket burst size (with --fleet; default max(1, rate))",
    )
    _add_workload_args(chaos_p)
    _add_tenant_args(chaos_p, admission=False)
    # Chaos checks invariants, not percentiles; keep runs quick.
    chaos_p.set_defaults(func=cmd_chaos, requests=120)

    prefix_p = sub.add_parser(
        "prefix",
        help="compare prefix-affinity vs locality-blind routing on a "
        "shared-prefix workload",
    )
    prefix_p.add_argument("--rate", type=float, default=3.0, help="per-GPU req/s")
    prefix_p.add_argument("--requests", type=int, default=240)
    prefix_p.add_argument("--seed", type=int, default=0)
    prefix_p.add_argument("--model", default="opt-13b", choices=sorted(MODEL_REGISTRY))
    prefix_p.add_argument(
        "--dataset", default="sharegpt", choices=sorted(DATASET_REGISTRY)
    )
    prefix_p.add_argument("--nodes", type=int, default=2, help="fleet cluster nodes")
    prefix_p.add_argument("--pairs-per-node", type=int, default=2)
    prefix_p.add_argument(
        "--cache-tokens",
        type=int,
        default=2048,
        help="warm-prefix KV budget per prefill instance (tokens)",
    )
    prefix_p.add_argument(
        "--prefix-mix",
        default=None,
        metavar="SPEC",
        help="shared-prefix population (default: 8 x 512-token prefixes, 20%% none)",
    )
    prefix_p.add_argument(
        "--smoke", action="store_true", help="fast deterministic CI cell"
    )
    prefix_p.add_argument("--out", default=None, help="write the JSON report here")
    prefix_p.add_argument("--json", action="store_true")
    prefix_p.set_defaults(func=cmd_prefix)

    hetero_p = sub.add_parser(
        "hetero",
        help="heterogeneous-fleet differentials: seconds-based routing vs "
        "count-based, and failure-reactive re-planning vs running degraded",
    )
    hetero_p.add_argument(
        "--shape",
        default=None,
        metavar="SPEC",
        help="fleet shape spec, e.g. 'a800:2,h100' (default: narrow A800 "
        "pair beside an H100 pair; member 1 is the crash target)",
    )
    hetero_p.add_argument("--rate", type=float, default=3.0, help="per-GPU req/s")
    hetero_p.add_argument("--requests", type=int, default=480)
    hetero_p.add_argument("--seed", type=int, default=0)
    hetero_p.add_argument("--model", default="opt-13b", choices=sorted(MODEL_REGISTRY))
    hetero_p.add_argument(
        "--dataset", default="sharegpt", choices=sorted(DATASET_REGISTRY)
    )
    hetero_p.add_argument("--pairs-per-node", type=int, default=1)
    hetero_p.add_argument(
        "--fault-plan",
        default="member-crash",
        help="fleet fault plan the re-planning arm runs under",
    )
    hetero_p.add_argument(
        "--smoke", action="store_true", help="fast deterministic CI cell"
    )
    hetero_p.add_argument("--out", default=None, help="write the JSON report here")
    hetero_p.add_argument("--json", action="store_true")
    hetero_p.set_defaults(func=cmd_hetero)

    tenants_p = sub.add_parser(
        "tenants",
        help="compare fair-share vs FIFO-within-tier isolation under a "
        "heavy-tenant burst",
    )
    tenants_p.add_argument("--rate", type=float, default=3.0, help="per-GPU req/s")
    tenants_p.add_argument("--requests", type=int, default=160)
    tenants_p.add_argument("--seed", type=int, default=0)
    tenants_p.add_argument("--model", default="opt-13b", choices=sorted(MODEL_REGISTRY))
    tenants_p.add_argument(
        "--dataset", default="sharegpt", choices=sorted(DATASET_REGISTRY)
    )
    tenants_p.add_argument(
        "--light-tenants", type=int, default=2, help="light tenants sharing the system"
    )
    tenants_p.add_argument(
        "--light-weight", type=float, default=4.0, help="WFQ weight per light tenant"
    )
    tenants_p.add_argument(
        "--tenant-max-inflight",
        type=int,
        default=8,
        help="per-tenant concurrency budget in the fair-share runs",
    )
    tenants_p.add_argument(
        "--burst-requests", type=int, default=48, help="heavy-tenant burst size"
    )
    tenants_p.add_argument(
        "--bound",
        type=float,
        default=1.5,
        help="isolation bound: max light P99 TTFT degradation vs no-burst baseline",
    )
    tenants_p.add_argument(
        "--smoke", action="store_true", help="fast deterministic CI cell"
    )
    tenants_p.add_argument("--out", default=None, help="write the JSON report here")
    tenants_p.add_argument("--json", action="store_true")
    tenants_p.set_defaults(func=cmd_tenants)

    bench_p = sub.add_parser(
        "bench",
        help="scale benchmark: record a BENCH_<n>.json perf-trajectory point",
    )
    bench_p.add_argument(
        "--requests",
        type=int,
        default=None,
        help="single-phase request count (default: 100000, or 2000 with --smoke)",
    )
    bench_p.add_argument(
        "--smoke", action="store_true", help="seconds-scale CI configuration"
    )
    bench_p.add_argument("--seed", type=int, default=0)
    bench_p.add_argument("--label", default="scale")
    bench_p.add_argument("--model", default="opt-13b", choices=sorted(MODEL_REGISTRY))
    bench_p.add_argument(
        "--dataset", default="sharegpt", choices=sorted(DATASET_REGISTRY)
    )
    bench_p.add_argument(
        "--out", default=None, help="explicit output path (default: next BENCH_<n>.json)"
    )
    bench_p.add_argument(
        "--root", default=".", help="directory holding the BENCH_<n>.json trajectory"
    )
    bench_p.add_argument(
        "--baseline",
        default=None,
        help="JSON file with pre-optimisation numbers to embed under 'baseline'",
    )
    bench_p.set_defaults(func=cmd_bench)

    models_p = sub.add_parser("models", help="list known model architectures")
    models_p.set_defaults(func=cmd_models)

    datasets_p = sub.add_parser("datasets", help="list workload profiles")
    datasets_p.set_defaults(func=cmd_datasets)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    for system in getattr(args, "systems", []) or []:
        if system not in SYSTEM_NAMES:
            parser.error(f"unknown system {system!r}; known: {SYSTEM_NAMES}")
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
