"""Figure 1: TPOT/TTFT degradation of existing systems under high load.

(a) DistServe's decode queuing delay and KV-swap counts grow with request
    rate.  Substitution note: at equal TP our simulated prefill instance
    saturates before decode memory does, so the memory-pressure series uses
    the decode-bound [TP-2 | TP-1] placement, which puts the decode
    instance in exactly the regime the paper's figure depicts.
(b) SLO attainment of DistServe vs vLLM collapses as rate grows, with
    phase-disaggregated DistServe falling *below* colocated vLLM — the
    paper's motivating observation.
"""

from __future__ import annotations

from conftest import save_report

from repro.harness.report import format_table
from repro.harness.runner import ExperimentSpec, run_experiment

RATES = [3.0, 4.0, 5.0, 6.0]
NUM_REQUESTS = 500


def run_fig1a():
    rows = []
    for rate in RATES:
        result = run_experiment(
            ExperimentSpec(
                system="distserve",
                model="opt-13b",
                dataset="sharegpt",
                rate_per_gpu=rate,
                num_requests=NUM_REQUESTS,
                seed=17,
                decode_parallel=(1, 1),
            )
        )
        rows.append(
            {
                "rate/gpu": rate,
                "mean decode queue delay (s)": result.summary["mean_decode_queue_delay"],
                "swap events": result.summary["swap_events"],
                "tpot_p99 (s)": result.summary["tpot_p99"],
            }
        )
    return rows


def run_fig1b():
    rows = []
    for rate in RATES:
        for system in ("distserve", "vllm"):
            result = run_experiment(
                ExperimentSpec(
                    system=system,
                    model="opt-13b",
                    dataset="sharegpt",
                    rate_per_gpu=rate,
                    num_requests=NUM_REQUESTS,
                    seed=17,
                )
            )
            rows.append(
                {
                    "rate/gpu": rate,
                    "system": system,
                    "slo attainment": result.summary["slo_attainment"],
                    "ttft_p50 (s)": result.summary["ttft_p50"],
                    "tpot_p99 (s)": result.summary["tpot_p99"],
                }
            )
    return rows


def test_fig1a_decode_queuing_and_swapping(benchmark, output_dir):
    rows = benchmark.pedantic(run_fig1a, rounds=1, iterations=1)
    # Queue delay and swapping must grow with rate.
    assert rows[-1]["mean decode queue delay (s)"] > rows[0]["mean decode queue delay (s)"]
    assert rows[-1]["swap events"] >= rows[0]["swap events"]
    assert rows[-1]["swap events"] > 0
    rendered = format_table(
        rows,
        title="Fig 1a - DistServe decode queuing & swapping vs rate "
        "(decode-memory-pressured deployment)",
    )
    save_report(output_dir, "fig01a_motivation", rows, rendered)


def test_fig1b_slo_attainment_collapse(benchmark, output_dir):
    rows = benchmark.pedantic(run_fig1b, rounds=1, iterations=1)
    ds = [r for r in rows if r["system"] == "distserve"]
    vl = [r for r in rows if r["system"] == "vllm"]
    # Both degrade with rate...
    assert ds[-1]["slo attainment"] < ds[0]["slo attainment"]
    assert vl[-1]["slo attainment"] < vl[0]["slo attainment"]
    # ...and at the highest rates PD DistServe is no better than colocated
    # vLLM (the paper's surprising observation).
    assert ds[-1]["slo attainment"] <= vl[-1]["slo attainment"] + 0.05
    rendered = format_table(rows, title="Fig 1b - SLO attainment under load (OPT-13B)")
    save_report(output_dir, "fig01b_motivation", rows, rendered)
