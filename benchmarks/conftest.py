"""Shared helpers for the benchmark harness.

Every ``bench_*`` file regenerates one table or figure from the paper's
evaluation.  Runs print the paper-style rows (use ``pytest -s``) and write
them under ``benchmarks/output/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def save_report(output_dir: Path, name: str, rows: list[dict], rendered: str) -> None:
    """Persist one experiment's rows (JSON) and rendered table (txt)."""
    (output_dir / f"{name}.json").write_text(json.dumps(rows, indent=2, default=str))
    (output_dir / f"{name}.txt").write_text(rendered + "\n")
    print("\n" + rendered)
