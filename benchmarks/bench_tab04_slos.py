"""Table 4: SLOs per model/scenario.

The paper sets TPOT SLO = ~4x an isolated decode iteration (batch 16,
dataset-average context) and TTFT SLO empirically.  This bench applies the
same rule to the simulator's latencies and prints the derived values next
to the published Table 4.
"""

from __future__ import annotations

from conftest import save_report

from repro.harness.report import format_table
from repro.harness.slo import PAPER_SLOS, derive_slo
from repro.models.parallelism import ParallelConfig
from repro.models.registry import get_model
from repro.workloads.datasets import get_dataset

SCENARIOS = [
    ("llama2-13b", "longbench", ParallelConfig(tp=2)),
    ("llama2-70b", "longbench", ParallelConfig(tp=2, pp=2)),
    ("opt-13b", "sharegpt", ParallelConfig(tp=2)),
    ("opt-66b", "sharegpt", ParallelConfig(tp=2, pp=2)),
]


def build_rows() -> list[dict]:
    rows = []
    for model_name, dataset_name, parallel in SCENARIOS:
        model, dataset = get_model(model_name), get_dataset(dataset_name)
        derived = derive_slo(model, dataset, parallel)
        published = PAPER_SLOS[(model_name, dataset_name)]
        rows.append(
            {
                "model": model_name,
                "attention": "GQA" if model.uses_gqa else "MHA",
                "dataset": dataset_name,
                "derived TTFT (s)": derived.ttft,
                "derived TPOT (s)": derived.tpot,
                "paper TTFT (s)": published.ttft,
                "paper TPOT (s)": published.tpot,
            }
        )
    return rows


def test_table4_slos(benchmark, output_dir):
    rows = benchmark(build_rows)
    # The rule structure must hold even where absolute speeds differ:
    by_model = {r["model"]: r for r in rows}
    assert by_model["opt-66b"]["derived TPOT (s)"] > by_model["opt-13b"]["derived TPOT (s)"]
    assert by_model["llama2-70b"]["derived TPOT (s)"] > by_model["llama2-13b"]["derived TPOT (s)"]
    # Summarisation scenarios keep their far looser TTFT/TPOT ratio.
    l13 = by_model["llama2-13b"]
    o13 = by_model["opt-13b"]
    assert (
        l13["derived TTFT (s)"] / l13["derived TPOT (s)"]
        > o13["derived TTFT (s)"] / o13["derived TPOT (s)"]
    )
    rendered = format_table(rows, title="Table 4 - SLOs (derived by the paper's rule vs published)")
    save_report(output_dir, "tab04_slos", rows, rendered)
