"""Table 2: dataset statistics of the evaluation workloads.

Regenerates the paper's Table 2 from the synthetic generators and checks
each published moment is matched.
"""

from __future__ import annotations

import numpy as np
from conftest import save_report

from repro.harness.report import format_table
from repro.sim.random import RandomStreams
from repro.workloads.datasets import LONGBENCH, SHAREGPT


def build_rows(n: int = 100_000) -> list[dict]:
    rows = []
    for dataset in (SHAREGPT, LONGBENCH):
        streams = RandomStreams(0)
        prompts = dataset.prompt.sample(streams.get("p"), n)
        outputs = dataset.output.sample(streams.get("o"), n)
        rows.append(
            {
                "dataset": dataset.name,
                "prompt avg": prompts.mean(),
                "prompt med": float(np.median(prompts)),
                "prompt P90": float(np.percentile(prompts, 90)),
                "output avg": outputs.mean(),
                "output med": float(np.median(outputs)),
                "output P90": float(np.percentile(outputs, 90)),
                "paper prompt (avg/med/P90)": "/".join(map(str, dataset.prompt_stats)),
                "paper output (avg/med/P90)": "/".join(map(str, dataset.output_stats)),
            }
        )
    return rows


def test_table2_dataset_stats(benchmark, output_dir):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    for row, dataset in zip(rows, (SHAREGPT, LONGBENCH)):
        assert row["prompt med"] == pytest_approx(dataset.prompt_stats[1], 0.06)
        assert row["prompt P90"] == pytest_approx(dataset.prompt_stats[2], 0.10)
        assert row["prompt avg"] == pytest_approx(dataset.prompt_stats[0], 0.12)
        assert row["output med"] == pytest_approx(dataset.output_stats[1], 0.25)
    rendered = format_table(rows, title="Table 2 - generated dataset statistics", precision=1)
    save_report(output_dir, "tab02_datasets", rows, rendered)


def pytest_approx(value: float, rel: float):
    import pytest

    return pytest.approx(value, rel=rel)
