"""Extension: fleet scale-out and request routing (paper §7).

Measures (a) whether per-GPU service quality survives scaling from one
node to two (the linear scaling rule applied to a fleet of WindServe
pairs), and (b) what the router policy is worth: round-robin vs
least-loaded vs Profiler-predicted-TTFT routing under bursty arrivals,
where load skew actually happens.
"""

from __future__ import annotations

from conftest import save_report

from repro.core.fleet import build_windserve_fleet
from repro.harness.report import format_table
from repro.harness.slo import derive_slo
from repro.hardware.cluster import ClusterTopology
from repro.models.parallelism import ParallelConfig
from repro.models.registry import get_model
from repro.serving.system import SystemConfig
from repro.workloads.datasets import get_dataset
from repro.workloads.trace import generate_trace

RATE_PER_GPU = 3.0


def _config():
    model = get_model("opt-13b")
    slo = derive_slo(model, get_dataset("sharegpt"), ParallelConfig(tp=2))
    return SystemConfig(model=model, slo=slo), slo


def run_scale_out():
    config, slo = _config()
    model = get_model("opt-13b")
    rows = []
    for nodes in (1, 2):
        fleet = build_windserve_fleet(
            config, ClusterTopology(num_nodes=nodes, gpus_per_node=8)
        )
        gpus = fleet.num_gpus
        trace = generate_trace(
            get_dataset("sharegpt"),
            rate=RATE_PER_GPU * gpus,
            num_requests=150 * gpus // 4,
            seed=101,
            model=model,
        )
        metrics = fleet.run_to_completion(trace)
        rows.append(
            {
                "nodes": nodes,
                "gpus": gpus,
                "members": len(fleet.members),
                "ttft_p50 (s)": metrics.ttft_stats().p50,
                "tpot_p99 (s)": metrics.tpot_stats().p99,
                "slo attainment": metrics.slo_attainment(slo),
            }
        )
    return rows


def run_router_comparison():
    config, slo = _config()
    model = get_model("opt-13b")
    rows = []
    for policy in ("round-robin", "least-loaded", "predicted-ttft"):
        fleet = build_windserve_fleet(
            config, ClusterTopology(num_nodes=1, gpus_per_node=8), policy=policy
        )
        trace = generate_trace(
            get_dataset("sharegpt"),
            rate=RATE_PER_GPU * 8,
            num_requests=400,
            seed=103,
            model=model,
            arrival_process="bursty",
            burstiness_cv=3.0,
        )
        metrics = fleet.run_to_completion(trace)
        rows.append(
            {
                "router": policy,
                "ttft_p50 (s)": metrics.ttft_stats().p50,
                "ttft_p99 (s)": metrics.ttft_stats().p99,
                "slo attainment": metrics.slo_attainment(slo),
                "routing split": "/".join(str(c) for c in fleet.routed),
            }
        )
    return rows


def test_fleet_scale_out(benchmark, output_dir):
    rows = benchmark.pedantic(run_scale_out, rounds=1, iterations=1)
    one, two = rows
    assert two["slo attainment"] >= 0.7 * one["slo attainment"]
    rendered = format_table(rows, title="Extension - fleet scale-out at fixed per-GPU rate")
    save_report(output_dir, "ext_fleet_scaleout", rows, rendered)


def test_fleet_router_policies(benchmark, output_dir):
    rows = benchmark.pedantic(run_router_comparison, rounds=1, iterations=1)
    by = {r["router"]: r for r in rows}
    # Profiler-predicted routing must not lose to blind round-robin...
    assert by["predicted-ttft"]["ttft_p99 (s)"] <= 1.1 * by["round-robin"]["ttft_p99 (s)"]
    # ...and beats request-count balancing: the paper's point that token-
    # based TTFT prediction is "a more precise flag" than request counts
    # holds at the fleet level too (counts ignore prompt lengths).
    assert by["predicted-ttft"]["ttft_p99 (s)"] <= 1.05 * by["least-loaded"]["ttft_p99 (s)"]
    rendered = format_table(rows, title="Extension - fleet router policies under bursty load")
    save_report(output_dir, "ext_fleet_router", rows, rendered)
