"""Ablation: asynchronous (layer-overlapped) KV hand-off.

The paper observes on LongBench that overlapping the prefill->decode KV
transfer with the prefill computation improves TPOT (the transfer no
longer sits between prefill and decode) at the cost of a slight TTFT
increase.  The effect should be strong for MHA models (big KV) and weak
for GQA LLaMA2-70B.
"""

from __future__ import annotations

from conftest import save_report

from repro.core.config import WindServeConfig
from repro.harness.report import format_table
from repro.harness.runner import ExperimentSpec, run_experiment

SCENARIOS = [
    ("llama2-13b", "longbench", 0.8, (2, 1)),  # MHA: 800 KiB KV per token
    ("llama2-70b", "longbench", 0.12, (2, 2)),  # GQA: 320 KiB KV per token
]


def run_async_ablation():
    rows = []
    for model, dataset, rate, parallel in SCENARIOS:
        for mode, ws in (
            ("async", WindServeConfig()),
            ("blocking", WindServeConfig(async_transfer=False)),
        ):
            result = run_experiment(
                ExperimentSpec(
                    system="windserve",
                    model=model,
                    dataset=dataset,
                    rate_per_gpu=rate,
                    num_requests=300,
                    seed=61,
                    prefill_parallel=parallel,
                    decode_parallel=parallel,
                    ws_config=ws,
                )
            )
            s = result.summary
            rows.append(
                {
                    "model": model,
                    "transfer": mode,
                    "ttft_p50 (s)": s["ttft_p50"],
                    "tpot_p50 (s)": s["tpot_p50"],
                    "tpot_p99 (s)": s["tpot_p99"],
                    "slo attainment": s["slo_attainment"],
                }
            )
    return rows


def _pair(rows, model):
    a = next(r for r in rows if r["model"] == model and r["transfer"] == "async")
    b = next(r for r in rows if r["model"] == model and r["transfer"] == "blocking")
    return a, b


def test_ablation_async_transfer(benchmark, output_dir):
    rows = benchmark.pedantic(run_async_ablation, rounds=1, iterations=1)
    a13, b13 = _pair(rows, "llama2-13b")
    # MHA model: async hand-off clearly improves TPOT...
    assert a13["tpot_p50 (s)"] < b13["tpot_p50 (s)"]
    # ...at a slight TTFT cost (the paper's LongBench observation).
    assert a13["ttft_p50 (s)"] >= 0.95 * b13["ttft_p50 (s)"]

    a70, b70 = _pair(rows, "llama2-70b")
    # GQA shrinks the transfer, so the TPOT gain is proportionally smaller.
    gain_13 = (b13["tpot_p50 (s)"] - a13["tpot_p50 (s)"]) / b13["tpot_p50 (s)"]
    gain_70 = (b70["tpot_p50 (s)"] - a70["tpot_p50 (s)"]) / b70["tpot_p50 (s)"]
    assert gain_13 > gain_70
    rendered = format_table(
        rows, title="Ablation - async (layer-overlapped) KV hand-off", precision=4
    )
    save_report(output_dir, "abl_async_transfer", rows, rendered)
