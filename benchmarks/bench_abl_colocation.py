"""Ablation: co-location technology for dispatched prefills (§3.4).

The paper argues CUDA streams beat the alternatives NVIDIA offers for GPU
sharing: regular fused batches interfere, and static partitions (MPS/MIG/
vGPU-style) waste their reserved share whenever only one job type runs.
This bench measures all three modes under the same overload.
"""

from __future__ import annotations

from conftest import save_report

from repro.core.config import WindServeConfig
from repro.harness.report import format_table
from repro.harness.runner import ExperimentSpec, run_experiment

MODES = {
    "sbd": WindServeConfig(colocation_mode="sbd"),
    "hybrid": WindServeConfig(colocation_mode="hybrid"),
    "static-partition-30%": WindServeConfig(
        colocation_mode="static-partition", static_partition_fraction=0.3
    ),
}


def run_modes():
    rows = []
    for label, ws in MODES.items():
        result = run_experiment(
            ExperimentSpec(
                system="windserve",
                model="opt-13b",
                dataset="sharegpt",
                rate_per_gpu=4.0,
                num_requests=400,
                seed=53,
                ws_config=ws,
            )
        )
        s = result.summary
        rows.append(
            {
                "colocation": label,
                "ttft_p50 (s)": s["ttft_p50"],
                "tpot_p90 (s)": s["tpot_p90"],
                "tpot_p99 (s)": s["tpot_p99"],
                "slo attainment": s["slo_attainment"],
                "dispatched": result.counters.get("dispatched_prefill", 0),
            }
        )
    return rows


def test_ablation_colocation_modes(benchmark, output_dir):
    rows = benchmark.pedantic(run_modes, rounds=1, iterations=1)
    by = {r["colocation"]: r for r in rows}
    # SBD must beat regular hybrid batching on TPOT (Fig 13a mechanism).
    assert by["sbd"]["tpot_p90 (s)"] < by["hybrid"]["tpot_p90 (s)"]
    # Static partitioning taxes decode permanently: worse TPOT than SBD.
    assert by["sbd"]["tpot_p90 (s)"] < by["static-partition-30%"]["tpot_p90 (s)"]
    # And SBD wins overall service quality.
    assert by["sbd"]["slo attainment"] >= max(
        by["hybrid"]["slo attainment"], by["static-partition-30%"]["slo attainment"]
    )
    rendered = format_table(
        rows, title="Ablation - co-location modes for dispatched prefills (§3.4)"
    )
    save_report(output_dir, "abl_colocation", rows, rendered)
