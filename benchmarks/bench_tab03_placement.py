"""Table 3: placement strategies chosen by simulation.

DistServe (and WindServe after it) picks instance parallelism by simulating
candidates.  This bench runs the placement search for the OPT-13B chatbot
scenario and prints the ranking next to the paper's Table 3 choice.
"""

from __future__ import annotations

from conftest import save_report

from repro.harness.placement_search import search_placement
from repro.harness.report import format_table

PAPER_CHOICES = {
    ("opt-13b", "sharegpt"): ((2, 1), (2, 1)),
}


def run_search():
    return search_placement(
        system="distserve",
        model="opt-13b",
        dataset="sharegpt",
        rate_per_gpu=1.5,
        num_requests=200,
        candidates=(
            ((1, 1), (1, 1)),
            ((2, 1), (1, 1)),
            ((1, 1), (2, 1)),
            ((2, 1), (2, 1)),
            ((2, 2), (2, 1)),
            ((2, 1), (2, 2)),
        ),
    )


def test_table3_placement_search(benchmark, output_dir):
    scores = benchmark.pedantic(run_search, rounds=1, iterations=1)
    assert scores, "placement search returned nothing"
    rows = [
        {
            "placement": s.label(),
            "gpus": s.gpus_used,
            "slo attainment": s.slo_attainment,
            "goodput/gpu": s.goodput_per_gpu,
        }
        for s in scores
    ]
    # The paper's chosen placement must be competitive: present in the
    # ranking with SLO attainment within 25% of the simulation's best.
    # (Exact rank 1 is not expected — our per-GPU normalisation slightly
    # favours smaller deployments than the authors' testbed did.)
    paper = PAPER_CHOICES[("opt-13b", "sharegpt")]
    ranked = [(s.prefill_parallel, s.decode_parallel) for s in scores]
    assert paper in ranked[:4]
    paper_score = scores[ranked.index(paper)].slo_attainment
    assert paper_score >= 0.6 * scores[0].slo_attainment
    rendered = format_table(
        rows,
        title="Table 3 - placement ranking (OPT-13B/ShareGPT @ 1.5 req/s/GPU); "
        "paper chose [TP-2, PP-1 | TP-2, PP-1]",
    )
    save_report(output_dir, "tab03_placement", rows, rendered)
