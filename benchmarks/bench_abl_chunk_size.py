"""Ablation: chunked-prefill chunk size (the Fig. 8 discussion).

"While reducing the chunk size may decrease single-step decoding costs, it
further increases the prefill cost."  Swept analytically for LLaMA2-70B
(the paper's worked example) and end-to-end for the vLLM baseline.
"""

from __future__ import annotations

from conftest import save_report

from repro.harness.report import format_table
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.hardware.gpu import A800_80GB
from repro.models.parallelism import ParallelConfig
from repro.models.registry import get_model
from repro.perf.interference import StreamContentionModel
from repro.perf.roofline import LatencyModel
from repro.serving.instance import InstanceConfig

CHUNKS = [128, 256, 512, 1024, 2048]


def run_analytic_sweep():
    model = LatencyModel(get_model("llama2-70b"), A800_80GB, ParallelConfig(tp=2, pp=2))
    scm = StreamContentionModel()
    rows = []
    for chunk in CHUNKS:
        total, step, n = scm.chunked_prefill(model, 2048, chunk, 16, 16 * 2048)
        rows.append(
            {
                "chunk": chunk,
                "chunks": n,
                "prefill total (s)": total,
                "fused step (s)": step,
            }
        )
    return rows


def run_end_to_end_sweep():
    rows = []
    for chunk in (128, 512, 2048):
        result = run_experiment(
            ExperimentSpec(
                system="vllm",
                model="opt-13b",
                dataset="sharegpt",
                rate_per_gpu=2.5,
                num_requests=300,
                seed=73,
                instance_config=InstanceConfig(max_batched_tokens=chunk),
            )
        )
        s = result.summary
        rows.append(
            {
                "chunk": chunk,
                "ttft_p50 (s)": s["ttft_p50"],
                "tpot_p90 (s)": s["tpot_p90"],
                "slo attainment": s["slo_attainment"],
            }
        )
    return rows


def test_chunk_size_analytic_tradeoff(benchmark, output_dir):
    rows = benchmark(run_analytic_sweep)
    totals = [r["prefill total (s)"] for r in rows]
    steps = [r["fused step (s)"] for r in rows]
    # Smaller chunks: longer total prefill, shorter fused steps.
    assert totals == sorted(totals, reverse=True)
    assert steps == sorted(steps)
    rendered = format_table(
        rows, title="Chunk-size trade-off, LLaMA2-70B (paper's Fig 8 example)", precision=4
    )
    save_report(output_dir, "abl_chunk_size_analytic", rows, rendered)


def test_chunk_size_end_to_end(benchmark, output_dir):
    rows = benchmark.pedantic(run_end_to_end_sweep, rounds=1, iterations=1)
    small = next(r for r in rows if r["chunk"] == 128)
    large = next(r for r in rows if r["chunk"] == 2048)
    # Large chunks prioritise TTFT; small chunks protect TPOT.
    assert large["ttft_p50 (s)"] <= small["ttft_p50 (s)"]
    assert small["tpot_p90 (s)"] <= large["tpot_p90 (s)"]
    rendered = format_table(rows, title="Chunk-size trade-off, vLLM end-to-end")
    save_report(output_dir, "abl_chunk_size_e2e", rows, rendered)
