"""Figure 10: end-to-end latency, WindServe vs DistServe vs vLLM.

Four panels, as in the paper:

* 10a/10b — Chatbot: OPT-13B and OPT-66B on ShareGPT (TTFT P50/P99 and
  TPOT P90/P99 versus per-GPU rate);
* 10c/10d — Summarisation: LLaMA2-13B and LLaMA2-70B on LongBench.

Shape targets from the paper (absolute values are testbed-specific):
WindServe cuts TTFT median by 1.65-4.28x and TPOT P99 by ~1.5x versus
DistServe at high rates; at low rates the systems are comparable.
"""

from __future__ import annotations

import pytest
from conftest import save_report

from repro.harness.report import format_table
from repro.harness.runner import ExperimentSpec, run_experiment

NUM_REQUESTS = 400
SYSTEMS = ("windserve", "distserve", "vllm")

PANELS = {
    "10a/b-opt-13b": dict(
        model="opt-13b", dataset="sharegpt", parallel=((2, 1), (2, 1)),
        rates=[2.0, 3.0, 4.0, 5.0],
    ),
    "10a/b-opt-66b": dict(
        model="opt-66b", dataset="sharegpt", parallel=((2, 2), (2, 2)),
        rates=[0.3, 0.45, 0.6],
    ),
    "10c/d-llama2-13b": dict(
        model="llama2-13b", dataset="longbench", parallel=((2, 1), (2, 1)),
        rates=[0.5, 1.0, 1.5],
    ),
    "10c/d-llama2-70b": dict(
        model="llama2-70b", dataset="longbench", parallel=((2, 2), (2, 2)),
        rates=[0.1, 0.15, 0.2],
    ),
}


def run_panel(panel: str) -> list[dict]:
    cfg = PANELS[panel]
    rows = []
    for rate in cfg["rates"]:
        for system in SYSTEMS:
            result = run_experiment(
                ExperimentSpec(
                    system=system,
                    model=cfg["model"],
                    dataset=cfg["dataset"],
                    rate_per_gpu=rate,
                    num_requests=NUM_REQUESTS,
                    seed=37,
                    prefill_parallel=cfg["parallel"][0],
                    decode_parallel=cfg["parallel"][1],
                )
            )
            s = result.summary
            rows.append(
                {
                    "rate/gpu": rate,
                    "system": system,
                    "ttft_p50 (s)": s["ttft_p50"],
                    "ttft_p99 (s)": s["ttft_p99"],
                    "tpot_p90 (s)": s["tpot_p90"],
                    "tpot_p99 (s)": s["tpot_p99"],
                    "slo": s["slo_attainment"],
                }
            )
    return rows


def _series(rows, system):
    return [r for r in rows if r["system"] == system]


@pytest.mark.parametrize("panel", list(PANELS))
def test_fig10_panel(panel, benchmark, output_dir):
    rows = benchmark.pedantic(run_panel, args=(panel,), rounds=1, iterations=1)
    ws, ds = _series(rows, "windserve"), _series(rows, "distserve")
    top = -1  # highest-rate point
    # Headline shape: WindServe's TTFT median beats DistServe's at the
    # highest rate, by at least the paper's lower bound on its range.
    assert ds[top]["ttft_p50 (s)"] / ws[top]["ttft_p50 (s)"] >= 1.3
    # TPOT P99 no worse than ~DistServe's at high load.  (The paper itself
    # reports a slight TPOT increase for OPT-66B from SBD's decoding
    # overhead when DistServe isn't yet swap-bound.)
    assert ws[top]["tpot_p99 (s)"] <= 1.3 * ds[top]["tpot_p99 (s)"]
    # Overall service quality must win.
    assert ws[top]["slo"] >= ds[top]["slo"]
    rendered = format_table(
        rows, title=f"Fig {panel}: end-to-end latency vs per-GPU rate", precision=4
    )
    save_report(output_dir, f"fig10_{panel.replace('/', '_')}", rows, rendered)
