"""Extension: goodput capacity per system.

Collapses the Fig. 10/11 rate sweeps into one number per system: the
highest per-GPU request rate at which 70% of requests meet both SLOs
(the derived TTFT SLOs leave a long-prompt tail that can never meet them
at any rate, so 90% is unattainable for some scenarios)
(DistServe's goodput methodology applied to all three systems, both
scenarios).
"""

from __future__ import annotations

from conftest import save_report

from repro.harness.capacity import find_capacity
from repro.harness.report import format_table
from repro.harness.runner import ExperimentSpec

SCENARIOS = {
    "opt-13b/sharegpt": dict(model="opt-13b", dataset="sharegpt", high=8.0),
    "llama2-13b/longbench": dict(model="llama2-13b", dataset="longbench", high=3.0),
}
SYSTEMS = ("windserve", "distserve", "vllm")


def run_capacity():
    rows = []
    for label, cfg in SCENARIOS.items():
        for system in SYSTEMS:
            spec = ExperimentSpec(
                system=system,
                model=cfg["model"],
                dataset=cfg["dataset"],
                rate_per_gpu=1.0,
                num_requests=250,
                seed=107,
            )
            result = find_capacity(
                spec, target_attainment=0.7, low=0.2, high=cfg["high"], iterations=6
            )
            rows.append(
                {
                    "scenario": label,
                    "system": system,
                    "capacity (req/s/GPU @ 70% SLO)": result.capacity_per_gpu,
                    "attainment there": result.attainment_at_capacity,
                }
            )
    return rows


def test_goodput_capacity(benchmark, output_dir):
    rows = benchmark.pedantic(run_capacity, rounds=1, iterations=1)
    for label in SCENARIOS:
        series = {r["system"]: r for r in rows if r["scenario"] == label}
        ws = series["windserve"]["capacity (req/s/GPU @ 70% SLO)"]
        ds = series["distserve"]["capacity (req/s/GPU @ 70% SLO)"]
        vl = series["vllm"]["capacity (req/s/GPU @ 70% SLO)"]
        assert ws > ds
        assert ws >= vl
    rendered = format_table(
        rows, title="Extension - goodput capacity at 70% SLO attainment"
    )
    save_report(output_dir, "ext_capacity", rows, rendered)
