"""Ablation: KV backups in the prefill instance (§3.3).

"To minimize migration overheads, the prefill instance dynamically backs up
the KV cache of some long-context requests...  These backups can reduce
migration costs when the backed-up requests are later rescheduled."
Measured: migration bulk bytes with and without backups, under decode
memory pressure.
"""

from __future__ import annotations

from dataclasses import replace

from conftest import save_report

from repro.core.config import WindServeConfig
from repro.harness.report import format_table
from repro.harness.runner import ExperimentSpec, build_system, resolve_slo
from repro.models.registry import get_model
from repro.serving.instance import InstanceConfig
from repro.workloads.datasets import get_dataset
from repro.workloads.trace import generate_trace


def run_backup_ablation():
    rows = []
    for label, enabled in (("backups-on", True), ("backups-off", False)):
        spec = ExperimentSpec(
            system="windserve",
            model="opt-13b",
            dataset="sharegpt",
            rate_per_gpu=3.2,
            num_requests=400,
            seed=67,
            decode_parallel=(1, 1),
            decode_instance_config=InstanceConfig(kv_capacity_override_tokens=16384),
            ws_config=WindServeConfig(
                backup_enabled=enabled, backup_min_prompt_tokens=512
            ),
        )
        system = build_system(spec)
        trace = generate_trace(
            get_dataset(spec.dataset),
            rate=spec.rate_per_gpu * spec.gpus_used,
            num_requests=spec.num_requests,
            seed=spec.seed,
            model=get_model(spec.model),
        )
        metrics = system.run_to_completion(trace)
        bulk_bytes = sum(
            job.nbytes
            for job in system.transfers.completed
            if job.kind == "migration-bulk"
        )
        completed_migrations = metrics.counters.get("reschedule_completed", 0)
        rows.append(
            {
                "config": label,
                "migrations": completed_migrations,
                "bulk GB moved": bulk_bytes / 1024**3,
                "bulk GB per migration": (
                    bulk_bytes / 1024**3 / completed_migrations
                    if completed_migrations
                    else 0.0
                ),
                "backups kept": metrics.counters.get("backup_kept", 0),
                "tpot_p99 (s)": metrics.tpot_stats().p99,
                "slo attainment": metrics.slo_attainment(resolve_slo(spec)),
            }
        )
    return rows


def test_ablation_backups(benchmark, output_dir):
    rows = benchmark.pedantic(run_backup_ablation, rounds=1, iterations=1)
    on = next(r for r in rows if r["config"] == "backups-on")
    off = next(r for r in rows if r["config"] == "backups-off")
    assert on["backups kept"] > 0
    assert off["backups kept"] == 0
    if on["migrations"] and off["migrations"]:
        # A backed-up request's bulk leg shrinks by its prompt's KV.
        assert on["bulk GB per migration"] < off["bulk GB per migration"]
    rendered = format_table(rows, title="Ablation - KV backups reduce migration volume (§3.3)")
    save_report(output_dir, "abl_backup", rows, rendered)
