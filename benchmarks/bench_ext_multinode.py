"""Extension: multi-node phase disaggregation (the paper's §7 limitation).

The authors could not evaluate WindServe across nodes; the simulator can.
Compares an intra-node PD deployment against one whose prefill and decode
instances sit on different nodes, so every KV hand-off and migration rides
the RDMA NICs — quantifying how much inter-node paths cost each system.
"""

from __future__ import annotations

from conftest import save_report

from repro.core.windserve import WindServeSystem
from repro.baselines.distserve import DistServeSystem
from repro.harness.report import format_table
from repro.harness.slo import derive_slo
from repro.hardware.cluster import ClusterTopology
from repro.hardware.topology import NodeTopology
from repro.models.parallelism import ParallelConfig
from repro.models.registry import get_model
from repro.serving.placement import Placement
from repro.serving.system import SystemConfig
from repro.workloads.datasets import get_dataset
from repro.workloads.trace import generate_trace

RATE_PER_GPU = 3.0
NUM_REQUESTS = 400


def _run(system_cls, topology, placement, slo, model, dataset):
    system = system_cls(
        SystemConfig(model=model, slo=slo), placement=placement, topology=topology
    )
    trace = generate_trace(
        dataset, rate=RATE_PER_GPU * 4, num_requests=NUM_REQUESTS, seed=79, model=model
    )
    metrics = system.run_to_completion(trace)
    return system, metrics


def run_multinode_comparison():
    model = get_model("opt-13b")
    dataset = get_dataset("sharegpt")
    slo = derive_slo(model, dataset, ParallelConfig(tp=2))

    rows = []
    for deployment in ("intra-node", "cross-node"):
        if deployment == "intra-node":
            topology = NodeTopology(num_gpus=4)
            placement = Placement(
                prefill_gpus=(0, 1),
                decode_gpus=(2, 3),
                prefill_parallel=ParallelConfig(tp=2),
                decode_parallel=ParallelConfig(tp=2),
            )
        else:
            topology = ClusterTopology(num_nodes=2, gpus_per_node=2, numa_nodes_per_node=1)
            placement = Placement(
                prefill_gpus=(0, 1),
                decode_gpus=(2, 3),
                prefill_parallel=ParallelConfig(tp=2),
                decode_parallel=ParallelConfig(tp=2),
            )
        for name, cls in (("windserve", WindServeSystem), ("distserve", DistServeSystem)):
            system, metrics = _run(cls, topology, placement, slo, model, dataset)
            rows.append(
                {
                    "deployment": deployment,
                    "system": name,
                    "ttft_p50 (s)": metrics.ttft_stats().p50,
                    "tpot_p50 (s)": metrics.tpot_stats().p50,
                    "tpot_p99 (s)": metrics.tpot_stats().p99,
                    "slo attainment": metrics.slo_attainment(slo),
                }
            )
    return rows


def test_multinode_pd_costs(benchmark, output_dir):
    rows = benchmark.pedantic(run_multinode_comparison, rounds=1, iterations=1)

    def pick(dep, system):
        return next(r for r in rows if r["deployment"] == dep and r["system"] == system)

    # Cross-node transfers hurt DistServe's TPOT (post-prefill blocking
    # hand-off now rides a 12.5 GB/s NIC)...
    assert (
        pick("cross-node", "distserve")["tpot_p50 (s)"]
        > pick("intra-node", "distserve")["tpot_p50 (s)"]
    )
    # ...while WindServe's overlapped transfer hides much of the extra cost.
    ws_penalty = (
        pick("cross-node", "windserve")["tpot_p50 (s)"]
        / pick("intra-node", "windserve")["tpot_p50 (s)"]
    )
    ds_penalty = (
        pick("cross-node", "distserve")["tpot_p50 (s)"]
        / pick("intra-node", "distserve")["tpot_p50 (s)"]
    )
    assert ws_penalty < ds_penalty
    # WindServe still wins overall in the cross-node deployment.
    assert (
        pick("cross-node", "windserve")["slo attainment"]
        >= pick("cross-node", "distserve")["slo attainment"]
    )
    rendered = format_table(rows, title="Extension - intra-node vs cross-node PD (§7)")
    save_report(output_dir, "ext_multinode", rows, rendered)
