"""Extension: robustness under bursty arrivals.

The paper claims WindServe "performs competitively across diverse
workloads" thanks to its bottleneck awareness.  Production traffic is
burstier than Poisson; this bench re-runs the chatbot comparison under a
Gamma-renewal arrival process (inter-arrival CV = 3) and checks WindServe's
advantage survives the bursts.
"""

from __future__ import annotations

from conftest import save_report

from repro.harness.report import format_table
from repro.harness.runner import ExperimentSpec, run_experiment


def run_burstiness():
    rows = []
    for process, cv in (("poisson", 1.0), ("bursty", 3.0)):
        for system in ("windserve", "distserve", "vllm"):
            result = run_experiment(
                ExperimentSpec(
                    system=system,
                    model="opt-13b",
                    dataset="sharegpt",
                    rate_per_gpu=3.0,
                    num_requests=400,
                    seed=83,
                    arrival_process=process,
                    burstiness_cv=cv,
                )
            )
            s = result.summary
            rows.append(
                {
                    "arrivals": f"{process} (cv={cv:g})",
                    "system": system,
                    "ttft_p50 (s)": s["ttft_p50"],
                    "ttft_p99 (s)": s["ttft_p99"],
                    "tpot_p99 (s)": s["tpot_p99"],
                    "slo attainment": s["slo_attainment"],
                }
            )
    return rows


def test_burstiness_robustness(benchmark, output_dir):
    rows = benchmark.pedantic(run_burstiness, rounds=1, iterations=1)

    def pick(arrivals_prefix, system):
        return next(
            r for r in rows if r["arrivals"].startswith(arrivals_prefix) and r["system"] == system
        )

    # Bursts hurt everyone...
    for system in ("windserve", "distserve", "vllm"):
        assert (
            pick("bursty", system)["slo attainment"]
            <= pick("poisson", system)["slo attainment"] + 0.05
        )
    # ...but WindServe stays on top under bursty load.
    ws = pick("bursty", "windserve")["slo attainment"]
    assert ws >= pick("bursty", "distserve")["slo attainment"]
    assert ws >= pick("bursty", "vllm")["slo attainment"]
    rendered = format_table(rows, title="Extension - Poisson vs bursty arrivals (CV=3)")
    save_report(output_dir, "ext_burstiness", rows, rendered)
