"""Figure 13: ablation studies.

(a) *WindServe-no-split* (no stream-based disaggregation) on LongBench:
    dispatched prefills fold into regular hybrid batches, inflating TPOT
    P99 while barely moving TTFT.
(b) *WindServe-no-resche* (no dynamic rescheduling) on ShareGPT under a
    decode-bound placement: decode queuing + KV-swap I/O inflate TPOT P99,
    again with minimal TTFT impact.
"""

from __future__ import annotations

from conftest import save_report

from repro.harness.report import format_table
from repro.harness.runner import ExperimentSpec, run_experiment


def run_no_split():
    rows = []
    for system in ("windserve", "windserve-no-split"):
        for rate in (1.2, 1.8):
            result = run_experiment(
                ExperimentSpec(
                    system=system,
                    model="opt-13b",
                    dataset="longbench",
                    rate_per_gpu=rate,
                    num_requests=400,
                    seed=47,
                )
            )
            s = result.summary
            rows.append(
                {
                    "system": system,
                    "rate/gpu": rate,
                    "ttft_p99 (s)": s["ttft_p99"],
                    "tpot_p99 (s)": s["tpot_p99"],
                    "slo attainment": s["slo_attainment"],
                }
            )
    return rows


def run_no_resche():
    rows = []
    for system in ("windserve", "windserve-no-resche"):
        for rate in (2.5, 3.5):
            result = run_experiment(
                ExperimentSpec(
                    system=system,
                    model="opt-13b",
                    dataset="sharegpt",
                    rate_per_gpu=rate,
                    num_requests=400,
                    seed=47,
                    decode_parallel=(1, 1),
                )
            )
            s = result.summary
            rows.append(
                {
                    "system": system,
                    "rate/gpu": rate,
                    "ttft_p99 (s)": s["ttft_p99"],
                    "tpot_p99 (s)": s["tpot_p99"],
                    "swap events": s["swap_events"],
                    "slo attainment": s["slo_attainment"],
                }
            )
    return rows


def _at(rows, system, rate):
    return next(r for r in rows if r["system"] == system and r["rate/gpu"] == rate)


def test_fig13a_no_split(benchmark, output_dir):
    rows = benchmark.pedantic(run_no_split, rounds=1, iterations=1)
    top = max(r["rate/gpu"] for r in rows)
    full, ablated = _at(rows, "windserve", top), _at(rows, "windserve-no-split", top)
    # SBD protects TPOT P99...
    assert full["tpot_p99 (s)"] < ablated["tpot_p99 (s)"]
    # ...with minimal TTFT impact (paper: 'both technologies have minimal
    # impact on TTFT').
    assert ablated["ttft_p99 (s)"] <= 3 * full["ttft_p99 (s)"] + 0.5
    rendered = format_table(
        rows, title="Fig 13a - WindServe-no-split, OPT-13B/LongBench P99 latencies"
    )
    save_report(output_dir, "fig13a_no_split", rows, rendered)


def test_fig13b_no_resche(benchmark, output_dir):
    rows = benchmark.pedantic(run_no_resche, rounds=1, iterations=1)
    top = max(r["rate/gpu"] for r in rows)
    full, ablated = _at(rows, "windserve", top), _at(rows, "windserve-no-resche", top)
    # Rescheduling cuts TPOT P99 (less queuing, less swap I/O)...
    assert full["tpot_p99 (s)"] < ablated["tpot_p99 (s)"]
    # ...and eliminates most swapping.
    assert full["swap events"] <= ablated["swap events"]
    rendered = format_table(
        rows, title="Fig 13b - WindServe-no-resche, OPT-13B/ShareGPT [TP-2|TP-1] P99s"
    )
    save_report(output_dir, "fig13b_no_resche", rows, rendered)
