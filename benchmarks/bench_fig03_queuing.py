"""Figure 3: queuing delays under different static resource allocations.

13B model on ShareGPT at 4 req/s per GPU:

* ``[TP-2 | TP-1]`` — prefill over-provisioned: decode queuing dominates;
* ``[TP-2 | TP-2]`` — decode over-provisioned: prefill queuing dominates.

Static GPU-granularity allocation cannot balance both — the paper's case
for fine-grained dynamic scheduling.
"""

from __future__ import annotations

import numpy as np
from conftest import save_report

from repro.harness.report import format_table
from repro.harness.runner import ExperimentSpec, run_experiment

RATE = 4.0
CONFIGS = [
    ("[TP-2 | TP-1]", (2, 1), (1, 1)),
    ("[TP-2 | TP-2]", (2, 1), (2, 1)),
]


def run_queuing():
    rows = []
    for label, prefill_par, decode_par in CONFIGS:
        result = run_experiment(
            ExperimentSpec(
                system="distserve",
                model="opt-13b",
                dataset="sharegpt",
                rate_per_gpu=RATE,
                num_requests=500,
                seed=29,
                prefill_parallel=prefill_par,
                decode_parallel=decode_par,
            )
        )
        completed = result.metrics.completed
        prefill_qd = [
            r.prefill_start - r.arrival_time
            for r in completed
            if r.prefill_start is not None and not r.dispatched_prefill
        ]
        rows.append(
            {
                "placement": label,
                "mean prefill queuing (s)": float(np.mean(prefill_qd)) if prefill_qd else 0.0,
                "mean decode queuing (s)": result.summary["mean_decode_queue_delay"],
                "swap events": result.summary["swap_events"],
            }
        )
    return rows


def test_fig3_queuing_delays(benchmark, output_dir):
    rows = benchmark.pedantic(run_queuing, rounds=1, iterations=1)
    tp1, tp2 = rows[0], rows[1]
    # [TP-2 | TP-1]: decode bottleneck -> decode queuing dwarfs prefill's.
    assert tp1["mean decode queuing (s)"] > tp1["mean prefill queuing (s)"]
    # [TP-2 | TP-2]: prefill bottleneck -> prefill queuing dwarfs decode's.
    assert tp2["mean prefill queuing (s)"] > tp2["mean decode queuing (s)"]
    # And the dominant component flips between the two placements.
    assert tp2["mean prefill queuing (s)"] > tp1["mean prefill queuing (s)"]
    assert tp1["mean decode queuing (s)"] > tp2["mean decode queuing (s)"]
    rendered = format_table(
        rows,
        title=f"Fig 3 - queuing delays, OPT-13B/ShareGPT @ {RATE} req/s/GPU (DistServe)",
    )
    save_report(output_dir, "fig03_queuing", rows, rendered)
