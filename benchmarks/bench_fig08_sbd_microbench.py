"""Figure 8: single-forward-pass cost, regular batching vs SBD.

16 decode requests (context 2048) fused with varying prefill token counts,
for OPT-13B/66B and LLaMA2-13B/70B.  Regular batching makes each decode
iteration pay the whole fused pass; stream-based disaggregation keeps the
decode iteration near its isolated cost while the prefill runs ~1.3-1.6x
slower in its own stream.
"""

from __future__ import annotations

from conftest import save_report

from repro.harness.report import format_table
from repro.hardware.gpu import A800_80GB
from repro.models.parallelism import ParallelConfig
from repro.models.registry import get_model
from repro.perf.interference import StreamContentionModel
from repro.perf.roofline import LatencyModel

MODELS = [
    ("opt-13b", ParallelConfig(tp=2)),
    ("opt-66b", ParallelConfig(tp=2, pp=2)),
    ("llama2-13b", ParallelConfig(tp=2)),
    ("llama2-70b", ParallelConfig(tp=2, pp=2)),
]
PREFILL_TOKENS = [256, 512, 1024, 2048]
DECODE_BATCH = 16
DECODE_CONTEXT = 2048


def run_microbench():
    scm = StreamContentionModel()
    rows = []
    for name, parallel in MODELS:
        model = LatencyModel(get_model(name), A800_80GB, parallel)
        iso_decode = model.decode(DECODE_BATCH, DECODE_BATCH * DECODE_CONTEXT).duration
        for tokens in PREFILL_TOKENS:
            regular = scm.regular_hybrid(
                model, tokens, DECODE_BATCH, DECODE_BATCH * DECODE_CONTEXT
            ).duration
            sbd = scm.sbd(model, tokens, DECODE_BATCH, DECODE_BATCH * DECODE_CONTEXT)
            rows.append(
                {
                    "model": name,
                    "prefill tokens": tokens,
                    "Regular decode+prefill pass (s)": regular,
                    "SBD decode iter (s)": sbd.decode_iteration,
                    "SBD prefill (s)": sbd.prefill_duration,
                    "isolated decode (s)": iso_decode,
                    "isolated prefill (s)": sbd.prefill_isolated,
                }
            )
    return rows


def test_fig8_sbd_vs_regular(benchmark, output_dir):
    rows = benchmark(run_microbench)
    for row in rows:
        # SBD keeps decode iterations near isolated cost...
        assert row["SBD decode iter (s)"] <= 1.25 * row["isolated decode (s)"]
        # ...while regular batching makes decodes pay the fused pass (the
        # gap only matters once the co-run prefill is non-trivial).
        if row["prefill tokens"] >= 512:
            assert row["Regular decode+prefill pass (s)"] > 2 * row["SBD decode iter (s)"]
        # SBD's prefill penalty stays moderate.
        assert row["SBD prefill (s)"] <= 2.0 * row["isolated prefill (s)"]
    # Interference grows with prefill size under regular batching.
    opt13 = [r for r in rows if r["model"] == "opt-13b"]
    assert opt13[-1]["Regular decode+prefill pass (s)"] > opt13[0][
        "Regular decode+prefill pass (s)"
    ]
    rendered = format_table(
        rows,
        title=f"Fig 8 - single pass cost, {DECODE_BATCH} decodes (ctx {DECODE_CONTEXT}) "
        "+ prefill tokens: Regular vs SBD",
        precision=4,
    )
    save_report(output_dir, "fig08_sbd_microbench", rows, rendered)
