"""Simulator performance: how fast the reproduction itself runs.

Not a paper experiment — a health metric for the repository: raw event
throughput of the discrete-event core, and end-to-end simulated requests
per wall-clock second.  Regressions here make every other bench slower.

The measurement machinery lives in :mod:`repro.harness.perfbench` (the
``python -m repro bench`` harness that records the ``BENCH_<n>.json``
trajectory — see docs/performance.md); this file only adapts it to
pytest-benchmark so ``make bench-figures`` plots include a perf point.
"""

from __future__ import annotations

from repro.harness.perfbench import (
    BenchPhase,
    BenchSpec,
    run_bench,
    validate_bench_payload,
)
from repro.sim.engine import Simulator


def churn_events(n: int = 50_000) -> int:
    """Raw engine churn: one self-rescheduling callback, n pops."""
    sim = Simulator()
    count = 0

    def tick() -> None:
        nonlocal count
        count += 1
        if count < n:
            sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return count


def test_event_loop_throughput(benchmark):
    count = benchmark(churn_events, 50_000)
    assert count == 50_000


def bench_single_phase(num_requests: int = 300) -> dict:
    """One perfbench single-system phase; returns the validated payload."""
    spec = BenchSpec(
        label="pytest-benchmark",
        num_requests=num_requests,
        seed=1,
        phases=(BenchPhase("single-windserve", "single", num_requests),),
    )
    payload = run_bench(spec)
    assert validate_bench_payload(payload) == []
    return payload


def test_end_to_end_simulation_throughput(benchmark):
    payload = benchmark.pedantic(bench_single_phase, rounds=3, iterations=1)
    (phase,) = payload["phases"]
    assert phase["completed"] >= 280
    assert phase["events_per_sec"] > 0
