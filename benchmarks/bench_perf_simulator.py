"""Simulator performance: how fast the reproduction itself runs.

Not a paper experiment — a health metric for the repository: raw event
throughput of the discrete-event core, and end-to-end simulated requests
per wall-clock second for a full WindServe deployment.  Regressions here
make every other bench slower.
"""

from __future__ import annotations

from repro.harness.runner import ExperimentSpec, run_experiment
from repro.sim.engine import Simulator


def churn_events(n: int = 50_000) -> int:
    sim = Simulator()
    count = 0

    def tick() -> None:
        nonlocal count
        count += 1
        if count < n:
            sim.schedule(0.001, tick)

    sim.schedule(0.0, tick)
    sim.run()
    return count


def test_event_loop_throughput(benchmark):
    count = benchmark(churn_events, 50_000)
    assert count == 50_000


def serve_requests() -> int:
    result = run_experiment(
        ExperimentSpec(
            system="windserve",
            model="opt-13b",
            dataset="sharegpt",
            rate_per_gpu=3.0,
            num_requests=300,
            seed=1,
        )
    )
    return result.summary["completed"]


def test_end_to_end_simulation_throughput(benchmark):
    completed = benchmark.pedantic(serve_requests, rounds=3, iterations=1)
    assert completed >= 280
