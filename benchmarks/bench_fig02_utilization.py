"""Figure 2: mean resource utilisation of prefill vs decode instances.

The paper's motivation: the prefill instance's tensor cores run hot while
the decode instance's tensor cores idle (decode is bandwidth-bound), i.e.
``Tensor Core(P) >> Tensor Core(D)`` and ``Mem BW(D)`` is the decode
instance's binding resource.  Reproduced for OPT-13B and OPT-66B under
DistServe (the static PD system the figure characterises).
"""

from __future__ import annotations

from conftest import save_report

from repro.harness.report import format_table
from repro.harness.runner import ExperimentSpec, run_experiment

SCENARIOS = [
    ("opt-13b", (2, 1), (2, 1), 2.5),
    ("opt-66b", (2, 2), (2, 2), 1.0),
]


def run_utilization():
    rows = []
    for model, prefill_par, decode_par, rate in SCENARIOS:
        result = run_experiment(
            ExperimentSpec(
                system="distserve",
                model=model,
                dataset="sharegpt",
                rate_per_gpu=rate,
                num_requests=400,
                seed=23,
                prefill_parallel=prefill_par,
                decode_parallel=decode_par,
            )
        )
        util = result.utilization
        rows.append(
            {
                "model": model,
                "Tensor Core(P)": util["prefill"]["compute"],
                "Mem BW(P)": util["prefill"]["memory_bw"],
                "Tensor Core(D)": util["decode"]["compute"],
                "Mem BW(D)": util["decode"]["memory_bw"],
            }
        )
    return rows


def test_fig2_instance_utilization(benchmark, output_dir):
    rows = benchmark.pedantic(run_utilization, rounds=1, iterations=1)
    for row in rows:
        # Decode tensor cores idle relative to prefill's (the paper's point).
        assert row["Tensor Core(D)"] < row["Tensor Core(P)"]
        # Decode's binding resource is memory bandwidth, not compute.
        assert row["Mem BW(D)"] > row["Tensor Core(D)"]
    rendered = format_table(
        rows, title="Fig 2 - mean utilisation per instance (DistServe)", precision=3
    )
    save_report(output_dir, "fig02_utilization", rows, rendered)
