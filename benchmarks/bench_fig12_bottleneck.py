"""Figure 12: bottleneck-aware adaptation under imbalanced allocations.

OPT-13B / ShareGPT with two deliberately skewed placements:

* ``[TP-2 | TP-1]`` — DistServe limited by TPOT (decode starves);
  WindServe recovers via Dynamic Rescheduling;
* ``[TP-2 | TP-2]`` — DistServe limited by TTFT (prefill starves);
  WindServe recovers via Dynamic Prefill Dispatch.
"""

from __future__ import annotations

import pytest
from conftest import save_report

from repro.harness.report import format_table
from repro.harness.runner import ExperimentSpec, run_experiment

CONFIGS = {
    "tp2-tp1": dict(decode_parallel=(1, 1), rates=[2.5, 3.5]),
    "tp2-tp2": dict(decode_parallel=(2, 1), rates=[3.5, 4.5]),
}


def run_config(name: str) -> list[dict]:
    cfg = CONFIGS[name]
    rows = []
    for rate in cfg["rates"]:
        for system in ("windserve", "distserve"):
            result = run_experiment(
                ExperimentSpec(
                    system=system,
                    model="opt-13b",
                    dataset="sharegpt",
                    rate_per_gpu=rate,
                    num_requests=400,
                    seed=43,
                    decode_parallel=cfg["decode_parallel"],
                )
            )
            s = result.summary
            rows.append(
                {
                    "rate/gpu": rate,
                    "system": system,
                    "slo attainment": s["slo_attainment"],
                    "ttft attainment": s["ttft_attainment"],
                    "tpot attainment": s["tpot_attainment"],
                    "dispatched": result.counters.get("dispatched_prefill", 0),
                    "rescheduled": result.counters.get("reschedule_completed", 0),
                }
            )
    return rows


def _top(rows, system):
    top_rate = max(r["rate/gpu"] for r in rows)
    return next(r for r in rows if r["system"] == system and r["rate/gpu"] == top_rate)


def test_fig12_decode_bound(benchmark, output_dir):
    rows = benchmark.pedantic(run_config, args=("tp2-tp1",), rounds=1, iterations=1)
    ws, ds = _top(rows, "windserve"), _top(rows, "distserve")
    # The decode bottleneck materially violates DistServe's TPOT SLO (in
    # our simulator it also backs up into prefill-side stalls, so TTFT
    # suffers too — DistServe's whole pipeline clogs)...
    assert ds["tpot attainment"] < 0.9
    # ...which WindServe mitigates via rescheduling.
    assert ws["rescheduled"] > 0
    assert ws["tpot attainment"] > ds["tpot attainment"]
    assert ws["slo attainment"] > ds["slo attainment"]
    rendered = format_table(rows, title="Fig 12 (left) - [TP-2 | TP-1], decode-bound")
    save_report(output_dir, "fig12_tp2_tp1", rows, rendered)


def test_fig12_prefill_bound(benchmark, output_dir):
    rows = benchmark.pedantic(run_config, args=("tp2-tp2",), rounds=1, iterations=1)
    ws, ds = _top(rows, "windserve"), _top(rows, "distserve")
    # DistServe's binding constraint is TTFT under this placement...
    assert ds["ttft attainment"] < ds["tpot attainment"]
    # ...which WindServe mitigates via dispatch.
    assert ws["dispatched"] > 0
    assert ws["ttft attainment"] > ds["ttft attainment"]
    assert ws["slo attainment"] > ds["slo attainment"]
    rendered = format_table(rows, title="Fig 12 (right) - [TP-2 | TP-2], prefill-bound")
    save_report(output_dir, "fig12_tp2_tp2", rows, rendered)
