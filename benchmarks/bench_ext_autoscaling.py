"""Extension: reactive autoscaling under a diurnal load pattern (§7).

Quiet -> rush -> quiet traffic against three fleet configurations:

* **fixed-small** — one always-on WindServe pair (cheap, drowns in the rush);
* **fixed-large** — four always-on pairs (great service, idle most of the day);
* **autoscaled** — starts at one pair, scales out during the rush (paying a
  30 s cold start per member) and back in afterwards.

The question §7 poses: how much of fixed-large's service quality can the
autoscaler keep while spending closer to fixed-small's GPU-hours?
"""

from __future__ import annotations

from conftest import save_report

from repro.core.autoscaler import AutoscalerConfig, AutoscalingFleet
from repro.core.fleet import build_windserve_fleet
from repro.harness.report import format_table
from repro.harness.slo import derive_slo
from repro.hardware.cluster import ClusterTopology
from repro.models.parallelism import ParallelConfig
from repro.models.registry import get_model
from repro.serving.system import SystemConfig
from repro.workloads.datasets import SHAREGPT, get_dataset
from repro.workloads.shifts import WorkloadPhase, generate_shifting_trace


def diurnal(model):
    return generate_shifting_trace(
        [
            WorkloadPhase(SHAREGPT, rate=5.0, num_requests=150),
            WorkloadPhase(SHAREGPT, rate=40.0, num_requests=2400),
            WorkloadPhase(SHAREGPT, rate=4.0, num_requests=240),
        ],
        seed=113,
        model=model,
    )


def run_autoscaling():
    model = get_model("opt-13b")
    slo = derive_slo(model, get_dataset("sharegpt"), ParallelConfig(tp=2))
    config = SystemConfig(model=model, slo=slo)

    rows = []
    for label, active in (("fixed-small", 1), ("fixed-large", 4), ("autoscaled", None)):
        cluster = ClusterTopology(num_nodes=2, gpus_per_node=8)
        base = build_windserve_fleet(config, cluster)
        fleet = AutoscalingFleet(
            base.members,
            autoscaler=AutoscalerConfig(
                startup_delay=30.0, scale_out_load=16.0, scale_in_load=2.0
            ),
            initially_active=active if active is not None else 1,
        )
        if active is not None:
            # Pin the fleet size: watermark thresholds that never trigger.
            fleet.autoscaler = AutoscalerConfig(
                min_active=active,
                scale_out_load=float("inf"),
                scale_in_load=-1.0,
                startup_delay=30.0,
            )
        metrics = fleet.run_to_completion(diurnal(model))
        rows.append(
            {
                "fleet": label,
                "ttft_p50 (s)": metrics.ttft_stats().p50,
                "ttft_p99 (s)": metrics.ttft_stats().p99,
                "slo attainment": metrics.slo_attainment(slo),
                "gpu-seconds": fleet.gpu_hours_used(),
                "scale events": len(fleet.events),
            }
        )
    return rows


def test_autoscaling_tradeoff(benchmark, output_dir):
    rows = benchmark.pedantic(run_autoscaling, rounds=1, iterations=1)
    by = {r["fleet"]: r for r in rows}
    # The autoscaler spends far less than always-on-large...
    assert by["autoscaled"]["gpu-seconds"] < 0.8 * by["fixed-large"]["gpu-seconds"]
    # ...while serving far better than always-on-small...
    assert by["autoscaled"]["slo attainment"] > by["fixed-small"]["slo attainment"]
    # ...and actually scaling in both directions.
    assert by["autoscaled"]["scale events"] >= 2
    rendered = format_table(
        rows, title="Extension - reactive autoscaling on a diurnal pattern (§7)"
    )
    save_report(output_dir, "ext_autoscaling", rows, rendered)
