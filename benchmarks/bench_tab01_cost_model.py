"""Table 1: per-layer FLOPs / IO analysis of Attention and FFN.

Regenerates the paper's cost table for the OPT family symbolically (the
general formulas reduce to ``8NH^2+4N^2H`` etc. for MHA + 4H FFN) and
benchmarks the analytic model's evaluation speed — it sits on the Global
Scheduler's critical path, so it must be cheap.
"""

from __future__ import annotations

from conftest import save_report

from repro.harness.report import format_table
from repro.models.costs import (
    attn_flops_decode,
    attn_flops_prefill,
    ffn_flops_decode,
    ffn_flops_prefill,
    layer_io_bytes_decode,
    layer_io_bytes_prefill,
)
from repro.models.registry import OPT_13B


def build_rows() -> list[dict]:
    h = OPT_13B.hidden_size
    n, b, sum_l = 1024, 16, 16 * 1024
    rows = []
    rows.append(
        {
            "module": "Attn",
            "prefill FLOPs (model)": attn_flops_prefill(OPT_13B, n),
            "prefill FLOPs (paper 8NH^2+4N^2H)": 8 * n * h**2 + 4 * n**2 * h,
            "decode FLOPs (model)": attn_flops_decode(OPT_13B, b, sum_l),
            "decode FLOPs (paper 8BH^2+4sLH)": 8 * b * h**2 + 4 * sum_l * h,
        }
    )
    rows.append(
        {
            "module": "FFN",
            "prefill FLOPs (model)": ffn_flops_prefill(OPT_13B, n),
            "prefill FLOPs (paper 8NH^2+4N^2H)": 16 * n * h**2,
            "decode FLOPs (model)": ffn_flops_decode(OPT_13B, b),
            "decode FLOPs (paper 8BH^2+4sLH)": 16 * b * h**2,
        }
    )
    rows.append(
        {
            "module": "IO/layer (bytes)",
            "prefill FLOPs (model)": layer_io_bytes_prefill(OPT_13B, n),
            "prefill FLOPs (paper 8NH^2+4N^2H)": None,
            "decode FLOPs (model)": layer_io_bytes_decode(OPT_13B, b, sum_l),
            "decode FLOPs (paper 8BH^2+4sLH)": 24 * h**2 + sum_l * 4 * h,
        }
    )
    return rows


def test_table1_cost_model(benchmark, output_dir):
    rows = benchmark(build_rows)
    for row in rows[:2]:
        assert row["prefill FLOPs (model)"] == row["prefill FLOPs (paper 8NH^2+4N^2H)"]
        assert row["decode FLOPs (model)"] == row["decode FLOPs (paper 8BH^2+4sLH)"]
    rendered = format_table(
        rows, title="Table 1 - per-layer overheads, OPT-13B (N=1024, B=16, sum L=16K)",
        precision=0,
    )
    save_report(output_dir, "tab01_cost_model", rows, rendered)
