"""Ablation: preemption mode under KV pressure — CPU swap vs recompute.

The paper's §2.2 names both failure modes of an overloaded decode pool:
"recomputations and excessive swapping of KV cache blocks".  This bench
compares vLLM's two preemption modes on a memory-pressured replica: swap
pays PCIe round-trips (contending with everything else on the switch),
recompute pays prefill FLOPs again.
"""

from __future__ import annotations

from conftest import save_report

from repro.harness.report import format_table
from repro.harness.runner import ExperimentSpec, run_experiment
from repro.serving.instance import InstanceConfig


def run_preemption_modes():
    rows = []
    for mode in ("swap", "recompute"):
        result = run_experiment(
            ExperimentSpec(
                system="vllm",
                model="opt-13b",
                dataset="sharegpt",
                rate_per_gpu=3.0,
                num_requests=400,
                seed=71,
                instance_config=InstanceConfig(
                    preemption_mode=mode, kv_capacity_override_tokens=24576
                ),
            )
        )
        s = result.summary
        rows.append(
            {
                "preemption": mode,
                "swap events": result.counters.get("swap_out", 0),
                "recompute events": result.counters.get("recompute_preempt", 0),
                "ttft_p99 (s)": s["ttft_p99"],
                "tpot_p99 (s)": s["tpot_p99"],
                "slo attainment": s["slo_attainment"],
            }
        )
    return rows


def test_ablation_preemption_mode(benchmark, output_dir):
    rows = benchmark.pedantic(run_preemption_modes, rounds=1, iterations=1)
    swap = next(r for r in rows if r["preemption"] == "swap")
    recompute = next(r for r in rows if r["preemption"] == "recompute")
    # Each mode exercises only its own mechanism.
    assert swap["swap events"] > 0 and swap["recompute events"] == 0
    assert recompute["recompute events"] > 0 and recompute["swap events"] == 0
    rendered = format_table(
        rows, title="Ablation - vLLM preemption under KV pressure: swap vs recompute"
    )
    save_report(output_dir, "abl_preemption", rows, rendered)
