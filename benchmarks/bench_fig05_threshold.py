"""Figure 5: dispatch-threshold sensitivity.

Sweeps Algorithm 1's ``thrd`` as a fraction of the TTFT SLO for the two
scenarios the paper uses (OPT-13B/ShareGPT @ 4 req/s/GPU and
LLaMA2-13B/LongBench @ 1.5 req/s/GPU).  The paper's finding: SLO attainment
peaks at a threshold slightly below the TTFT SLO — too low floods the
decode instance with prefills, too high leaves dispatch unused.
"""

from __future__ import annotations

from conftest import save_report

from repro.core.config import WindServeConfig
from repro.harness.report import format_table
from repro.harness.runner import ExperimentSpec, run_experiment

FRACTIONS = [0.1, 0.3, 0.6, 0.9, 1.5, 3.0]
SCENARIOS = [
    ("opt-13b", "sharegpt", 4.0),
    ("llama2-13b", "longbench", 1.5),
]


def run_threshold_sweep():
    rows = []
    for model, dataset, rate in SCENARIOS:
        for frac in FRACTIONS:
            result = run_experiment(
                ExperimentSpec(
                    system="windserve",
                    model=model,
                    dataset=dataset,
                    rate_per_gpu=rate,
                    num_requests=400,
                    seed=31,
                    ws_config=WindServeConfig(dispatch_threshold_frac=frac),
                )
            )
            rows.append(
                {
                    "scenario": f"{model}/{dataset}",
                    "thrd / TTFT-SLO": frac,
                    "slo attainment": result.summary["slo_attainment"],
                    "ttft_p50 (s)": result.summary["ttft_p50"],
                    "tpot_p99 (s)": result.summary["tpot_p99"],
                    "dispatched": result.counters.get("dispatched_prefill", 0),
                }
            )
    return rows


def test_fig5_threshold_sensitivity(benchmark, output_dir):
    rows = benchmark.pedantic(run_threshold_sweep, rounds=1, iterations=1)
    for model, dataset, _rate in SCENARIOS:
        series = [r for r in rows if r["scenario"] == f"{model}/{dataset}"]
        by_frac = {r["thrd / TTFT-SLO"]: r for r in series}
        # Lower thresholds dispatch more aggressively.
        assert by_frac[0.1]["dispatched"] >= by_frac[3.0]["dispatched"]
        # The paper's operating point (slightly below the SLO) must beat a
        # threshold far above the SLO (dispatch nearly disabled).
        assert by_frac[0.9]["slo attainment"] >= by_frac[3.0]["slo attainment"]
        # TPOT degrades as the threshold drops (more co-located prefills).
        assert by_frac[0.1]["tpot_p99 (s)"] >= by_frac[3.0]["tpot_p99 (s)"] * 0.9
    rendered = format_table(rows, title="Fig 5 - dispatch threshold sweep (WindServe)")
    save_report(output_dir, "fig05_threshold", rows, rendered)
