"""Extension: replanning vs dynamic scheduling under a workload shift (§2.2).

"Although DistServe suggests replanning the allocation strategy when the
request pattern shifts significantly, the associated replanning overhead
introduces non-negligible stagnation, rendering this approach suboptimal."

Workload: a chatbot phase (ShareGPT) followed by a summarisation phase
(LongBench).  Contenders on the same 8-GPU node:

* DistServe pinned to the chatbot-optimal placement (static);
* DistServe with pattern monitoring + stall-and-restart replanning;
* WindServe on a fixed balanced placement, adapting purely at runtime.
"""

from __future__ import annotations

from conftest import save_report

from repro.baselines.distserve import DistServeSystem
from repro.baselines.replanning import ReplanningDistServeSystem
from repro.core.windserve import WindServeSystem
from repro.harness.report import format_table
from repro.harness.slo import derive_slo
from repro.hardware.topology import NodeTopology
from repro.models.parallelism import ParallelConfig
from repro.models.registry import get_model
from repro.serving.metrics import SLO
from repro.serving.placement import plan_pd_placement
from repro.serving.system import SystemConfig
from repro.workloads.datasets import LONGBENCH, SHAREGPT, get_dataset
from repro.workloads.shifts import WorkloadPhase, generate_shifting_trace

PHASE_REQUESTS = 300


def _trace(model):
    return generate_shifting_trace(
        [
            WorkloadPhase(SHAREGPT, rate=12.0, num_requests=PHASE_REQUESTS),
            WorkloadPhase(LONGBENCH, rate=6.0, num_requests=PHASE_REQUESTS),
        ],
        seed=97,
        model=model,
    )


def run_shift_comparison():
    model = get_model("opt-13b")
    slo = derive_slo(model, get_dataset("sharegpt"), ParallelConfig(tp=2))

    chat_plan = plan_pd_placement(
        NodeTopology(num_gpus=8), ParallelConfig(tp=2, pp=1), ParallelConfig(tp=2, pp=3)
    )
    summarise_plan = plan_pd_placement(
        NodeTopology(num_gpus=8), ParallelConfig(tp=2, pp=3), ParallelConfig(tp=2, pp=1)
    )
    balanced_plan = plan_pd_placement(
        NodeTopology(num_gpus=8), ParallelConfig(tp=2, pp=2), ParallelConfig(tp=2, pp=2)
    )

    rows = []

    def record(name, system, extra=None):
        metrics = system.run_to_completion(_trace(model))
        rows.append(
            {
                "system": name,
                "ttft_p50 (s)": metrics.ttft_stats().p50,
                "ttft_p99 (s)": metrics.ttft_stats().p99,
                "tpot_p99 (s)": metrics.tpot_stats().p99,
                "slo attainment": metrics.slo_attainment(slo),
                "replans": extra() if extra else 0,
            }
        )

    static = DistServeSystem(
        SystemConfig(model=model, slo=slo),
        placement=chat_plan,
        topology=NodeTopology(num_gpus=8),
    )
    record("distserve-static", static)

    replanner = ReplanningDistServeSystem(
        SystemConfig(model=model, slo=slo),
        alternatives=[chat_plan, summarise_plan],
        topology=NodeTopology(num_gpus=8),
    )
    record("distserve-replan", replanner, extra=lambda: replanner.replan_count)

    windserve = WindServeSystem(
        SystemConfig(model=model, slo=slo),
        placement=balanced_plan,
        topology=NodeTopology(num_gpus=8),
    )
    record("windserve", windserve)
    return rows


def test_replanning_vs_dynamic_scheduling(benchmark, output_dir):
    rows = benchmark.pedantic(run_shift_comparison, rounds=1, iterations=1)
    by = {r["system"]: r for r in rows}
    # The replanner actually replanned...
    assert by["distserve-replan"]["replans"] >= 1
    # ...but WindServe's runtime scheduling beats both static and replanned
    # DistServe on the shifting workload — the §2.2 argument.
    assert by["windserve"]["slo attainment"] > by["distserve-replan"]["slo attainment"]
    assert by["windserve"]["slo attainment"] > by["distserve-static"]["slo attainment"]
    assert by["windserve"]["ttft_p50 (s)"] < by["distserve-replan"]["ttft_p50 (s)"]
    rendered = format_table(
        rows, title="Extension - workload shift: static vs replanning vs WindServe (§2.2)"
    )
    save_report(output_dir, "ext_replanning", rows, rendered)
