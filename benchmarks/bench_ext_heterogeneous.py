"""Extension: heterogeneous-GPU phase disaggregation (the paper's §7).

"High computing-resource GPUs with lower memory bandwidth, such as the
NVIDIA RTX 4090, are well-suited for prefill jobs ... the RTX 4090 offers
significant savings compared to expensive datacenter GPUs."

Compares an all-A800 WindServe deployment against one whose *prefill*
instance runs on a 4090 node, at equal GPU counts, and scores both on
goodput per dollar (cloud-price ratio A800:4090 ~ 6:1).
"""

from __future__ import annotations

from conftest import save_report

from repro.core.windserve import WindServeSystem
from repro.harness.report import format_table
from repro.harness.slo import derive_slo
from repro.hardware.cluster import ClusterTopology
from repro.hardware.gpu import A800_80GB, RTX_4090
from repro.models.parallelism import ParallelConfig
from repro.models.registry import get_model
from repro.serving.placement import Placement
from repro.serving.system import SystemConfig
from repro.workloads.datasets import get_dataset
from repro.workloads.trace import generate_trace

# Relative hourly cost units (cloud list prices, roughly).
COST = {A800_80GB.name: 6.0, RTX_4090.name: 1.0}
RATE_PER_GPU = 2.0
NUM_REQUESTS = 300


def run_heterogeneous():
    model = get_model("llama2-7b")
    dataset = get_dataset("sharegpt")
    # Score both deployments against the SLO of the A800 decode instance.
    slo = derive_slo(model, dataset, ParallelConfig(tp=2))
    rows = []
    for label, prefill_gpu in (("A800-prefill", A800_80GB), ("4090-prefill", RTX_4090)):
        cluster = ClusterTopology(
            num_nodes=2,
            gpus_per_node=2,
            numa_nodes_per_node=1,
            node_gpus=[prefill_gpu, A800_80GB],
        )
        tp_link = 23.0 if prefill_gpu.nvlink_gbps == 0 else prefill_gpu.nvlink_gbps
        placement = Placement(
            prefill_gpus=(0, 1),
            decode_gpus=(2, 3),
            prefill_parallel=ParallelConfig(tp=2, tp_link_gbps=tp_link),
            decode_parallel=ParallelConfig(tp=2),
        )
        system = WindServeSystem(
            SystemConfig(model=model, slo=slo),
            placement=placement,
            topology=cluster,
            prefill_gpu=prefill_gpu,
            decode_gpu=A800_80GB,
        )
        trace = generate_trace(
            dataset, rate=RATE_PER_GPU * 4, num_requests=NUM_REQUESTS, seed=89, model=model
        )
        metrics = system.run_to_completion(trace)
        cost = 2 * COST[prefill_gpu.name] + 2 * COST[A800_80GB.name]
        attainment = metrics.slo_attainment(slo)
        goodput = attainment * RATE_PER_GPU * 4
        rows.append(
            {
                "deployment": label,
                "ttft_p50 (s)": metrics.ttft_stats().p50,
                "tpot_p99 (s)": metrics.tpot_stats().p99,
                "slo attainment": attainment,
                "cost units": cost,
                "goodput/cost": goodput / cost,
            }
        )
    return rows


def test_heterogeneous_prefill_cost_efficiency(benchmark, output_dir):
    rows = benchmark.pedantic(run_heterogeneous, rounds=1, iterations=1)
    a800 = next(r for r in rows if r["deployment"] == "A800-prefill")
    r4090 = next(r for r in rows if r["deployment"] == "4090-prefill")
    # The consumer card slows prefill, so raw quality drops...
    assert r4090["ttft_p50 (s)"] >= a800["ttft_p50 (s)"]
    # ...but decode quality is untouched (it stays on A800s)...
    assert r4090["tpot_p99 (s)"] <= 1.25 * a800["tpot_p99 (s)"]
    # ...and per-dollar goodput improves — the paper's §7 thesis.
    assert r4090["goodput/cost"] > a800["goodput/cost"]
    rendered = format_table(
        rows, title="Extension - heterogeneous prefill hardware (§7 future work)"
    )
    save_report(output_dir, "ext_heterogeneous", rows, rendered)
