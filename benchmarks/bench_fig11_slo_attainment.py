"""Figure 11: SLO attainment rates across systems and workloads.

The paper's claim: WindServe improves SLO attainment by at least 1.5x at
high request rates on both the chatbot (ShareGPT) and summarisation
(LongBench) scenarios, beating DistServe *and* chunked-prefill vLLM.
"""

from __future__ import annotations

import pytest
from conftest import save_report

from repro.harness.report import format_table
from repro.harness.runner import ExperimentSpec, run_experiment

SYSTEMS = ("windserve", "distserve", "vllm")
SCENARIOS = {
    "11a-sharegpt": dict(model="opt-13b", dataset="sharegpt", rates=[2.0, 3.5, 5.0]),
    "11b-longbench": dict(model="llama2-13b", dataset="longbench", rates=[0.8, 1.4, 2.0]),
}


def run_scenario(name: str) -> list[dict]:
    cfg = SCENARIOS[name]
    rows = []
    for rate in cfg["rates"]:
        for system in SYSTEMS:
            result = run_experiment(
                ExperimentSpec(
                    system=system,
                    model=cfg["model"],
                    dataset=cfg["dataset"],
                    rate_per_gpu=rate,
                    num_requests=400,
                    seed=41,
                )
            )
            rows.append(
                {
                    "rate/gpu": rate,
                    "system": system,
                    "slo attainment": result.summary["slo_attainment"],
                    "ttft attainment": result.summary["ttft_attainment"],
                    "tpot attainment": result.summary["tpot_attainment"],
                }
            )
    return rows


@pytest.mark.parametrize("scenario", list(SCENARIOS))
def test_fig11_slo_attainment(scenario, benchmark, output_dir):
    rows = benchmark.pedantic(run_scenario, args=(scenario,), rounds=1, iterations=1)
    top_rate = max(r["rate/gpu"] for r in rows)
    at_top = {r["system"]: r["slo attainment"] for r in rows if r["rate/gpu"] == top_rate}
    # WindServe >= 1.5x both baselines at the highest rate.
    floor = max(at_top["distserve"], at_top["vllm"], 0.01)
    assert at_top["windserve"] >= 1.5 * floor
    rendered = format_table(rows, title=f"Fig {scenario}: SLO attainment vs rate")
    save_report(output_dir, f"fig11_{scenario}", rows, rendered)
