"""Ablation: migration victim policy — longest-context vs shortest-context.

The paper contrasts its choice with Llumnix: "Llumnix tends to migrate
short-context requests to reduce migration overhead and fragmentation,
while WindServe tends to migrate longer sequences in order to free up more
space and decrease prefill-decode interference."  This bench quantifies
that trade-off under decode memory pressure.
"""

from __future__ import annotations

from conftest import save_report

from repro.core.config import WindServeConfig
from repro.harness.report import format_table
from repro.harness.runner import ExperimentSpec, build_system, resolve_slo
from repro.models.registry import get_model
from repro.workloads.datasets import get_dataset
from repro.workloads.trace import generate_trace


def run_policies():
    rows = []
    for policy in ("longest-context", "shortest-context"):
        spec = ExperimentSpec(
            system="windserve",
            model="opt-13b",
            dataset="sharegpt",
            rate_per_gpu=3.5,
            num_requests=400,
            seed=59,
            decode_parallel=(1, 1),
            ws_config=WindServeConfig(reschedule_policy=policy),
        )
        system = build_system(spec)
        trace = generate_trace(
            get_dataset(spec.dataset),
            rate=spec.rate_per_gpu * spec.gpus_used,
            num_requests=spec.num_requests,
            seed=spec.seed,
            model=get_model(spec.model),
        )
        metrics = system.run_to_completion(trace)
        migration_bytes = sum(
            job.nbytes
            for job in system.transfers.completed
            if job.kind.startswith("migration")
        )
        migrations = metrics.counters.get("reschedule_completed", 0)
        slo = resolve_slo(spec)
        rows.append(
            {
                "policy": policy,
                "migrations": migrations,
                "migration GB": migration_bytes / 1024**3,
                "GB per migration": (
                    migration_bytes / 1024**3 / migrations if migrations else 0.0
                ),
                "swap events": metrics.counters.get("swap_out", 0),
                "tpot_p99 (s)": metrics.tpot_stats().p99,
                "slo attainment": metrics.slo_attainment(slo),
            }
        )
    return rows


def test_ablation_reschedule_policy(benchmark, output_dir):
    rows = benchmark.pedantic(run_policies, rounds=1, iterations=1)
    longest = next(r for r in rows if r["policy"] == "longest-context")
    shortest = next(r for r in rows if r["policy"] == "shortest-context")
    assert longest["migrations"] > 0 and shortest["migrations"] > 0
    # The defining difference: longest-first frees more KV per migration
    # (it deliberately moves the big allocations).
    assert longest["GB per migration"] > shortest["GB per migration"]
    # And WindServe's choice must not cost service quality.
    assert longest["tpot_p99 (s)"] <= 1.2 * shortest["tpot_p99 (s)"]
    assert longest["slo attainment"] >= 0.9 * shortest["slo attainment"]
    rendered = format_table(
        rows, title="Ablation - rescheduling victim policy (WindServe vs Llumnix-style)"
    )
    save_report(output_dir, "abl_reschedule_policy", rows, rendered)
